"""Per-cycle stall attribution — the *measured* CPI stack.

The paper's Figure 16 renders a stack model built from Eq. 1: penalties
are assumed to add independently, so the model's CPI decomposes by
construction.  This module measures the decomposition instead.  Both
detailed-simulator engines classify every cycle into exactly one stall
class — base progress, branch-misprediction drain/refill, L1/L2
instruction-miss stall, long data-miss (ROB blocked behind an
outstanding L2 load miss), other ROB-full pressure, or issue-window-full
pressure — and the class counts necessarily sum to the simulated cycle
count, so the measured stack sums to the simulated CPI *exactly*.
Comparing it against the model's stack turns the additivity assumption
into an observation (the ``val_additivity`` experiment).

Classification priority, applied after the dispatch phase of each cycle
(both engines use the identical order; the equivalence suite asserts the
resulting counts match bit for bit):

1. dispatch moved at least one instruction        -> ``base``
2. dispatch blocked, issue window full            -> ``window_full``
3. dispatch blocked, ROB full —
   ROB head is an outstanding long-miss load      -> ``dcache_long``
   otherwise                                      -> ``rob_full``
4. fetch stopped at an unresolved mispredict      -> ``branch``
5. ROB head is an outstanding long-miss load      -> ``dcache_long``
6. otherwise, the sticky front-end cause: the class of the event that
   last interrupted fetch (branch redirect/refill bubbles, I-miss fill)
   until dispatch succeeds again, else ``base``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.stack import CPIStack

#: integer stall-class codes used by the engine hot loops
(
    CLS_BASE,
    CLS_BRANCH,
    CLS_ICACHE_L1,
    CLS_ICACHE_L2,
    CLS_DCACHE_LONG,
    CLS_ROB_FULL,
    CLS_WINDOW_FULL,
) = range(7)

#: class names in code order
STALL_CLASSES = (
    "base",
    "branch",
    "icache_l1",
    "icache_l2",
    "dcache_long",
    "rob_full",
    "window_full",
)

_LABELS = {
    "base": "Base (dispatching)",
    "branch": "Branch mispredictions",
    "icache_l1": "L1 Icache misses",
    "icache_l2": "L2 Icache misses",
    "dcache_long": "L2 Dcache misses",
    "rob_full": "ROB full (other)",
    "window_full": "Window full",
}


@dataclass(frozen=True)
class MeasuredCPIStack:
    """Measured CPI decomposition of one detailed simulation.

    Every component is ``cycles in that class / instructions``; the
    components partition the simulated cycles, so :attr:`total` equals
    the simulated CPI exactly (up to float division).
    """

    name: str
    instructions: int
    cycles: int
    base: float
    branch: float
    icache_l1: float
    icache_l2: float
    dcache_long: float
    rob_full: float
    window_full: float

    @classmethod
    def from_counts(
        cls, name: str, counts: Sequence[int], instructions: int
    ) -> "MeasuredCPIStack":
        """Build from the engines' per-class cycle counters."""
        if len(counts) != len(STALL_CLASSES):
            raise ValueError(
                f"expected {len(STALL_CLASSES)} class counts, "
                f"got {len(counts)}"
            )
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        n = instructions
        return cls(
            name=name,
            instructions=n,
            cycles=int(sum(counts)),
            **{
                key: counts[code] / n
                for code, key in enumerate(STALL_CLASSES)
            },
        )

    @property
    def total(self) -> float:
        return sum(getattr(self, key) for key in STALL_CLASSES)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions

    def component(self, key: str) -> float:
        if key not in STALL_CLASSES:
            raise KeyError(f"unknown component {key!r}")
        return getattr(self, key)

    def fraction(self, key: str) -> float:
        total = self.total
        return self.component(key) / total if total > 0 else 0.0

    def as_rows(self) -> list[tuple[str, float]]:
        return [(_LABELS[key], getattr(self, key)) for key in STALL_CLASSES]

    def as_model_stack(self) -> CPIStack:
        """Fold the measured classes onto the model's Figure-16 slices.

        The model's ideal CPI comes from the IW characteristic at the
        real window size, so steady-state window pressure belongs to
        ``ideal``; ROB-full cycles are a secondary effect of long misses
        (paper §4.3: the ROB, not the window, binds during a long miss)
        and fold into ``l2_dcache``.
        """
        return CPIStack(
            name=self.name,
            ideal=self.base + self.window_full,
            l1_icache=self.icache_l1,
            l2_icache=self.icache_l2,
            l2_dcache=self.dcache_long + self.rob_full,
            branch=self.branch,
        )

    def render(self, bar_width: int = 50) -> str:
        """ASCII bar rendering, mirroring :meth:`CPIStack.render`."""
        total = self.total
        lines = [f"{self.name}: measured CPI {total:.3f}"]
        for label, value in self.as_rows():
            frac = value / total if total > 0 else 0.0
            bar = "#" * round(frac * bar_width)
            lines.append(f"  {label:22s} {value:6.3f} {bar}")
        return "\n".join(lines)


def render_side_by_side(
    model: CPIStack, measured: MeasuredCPIStack, bar_width: int = 24
) -> str:
    """Model and measured stacks as one comparison table.

    The measured stack is first folded onto the model's slices
    (:meth:`MeasuredCPIStack.as_model_stack`) so rows line up.
    """
    folded = measured.as_model_stack()
    lines = [
        f"{measured.name}: model CPI {model.total:.3f} vs "
        f"measured CPI {measured.total:.3f}"
    ]
    peak = max(
        max(v for _, v in model.as_rows()),
        max(v for _, v in folded.as_rows()),
        1e-12,
    )
    for (label, mv), (_, sv) in zip(model.as_rows(), folded.as_rows()):
        mbar = "#" * round(mv / peak * bar_width)
        sbar = "=" * round(sv / peak * bar_width)
        lines.append(
            f"  {label:22s} model {mv:6.3f} {mbar:<{bar_width}s} "
            f"measured {sv:6.3f} {sbar}"
        )
    return "\n".join(lines)
