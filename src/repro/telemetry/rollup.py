"""Fixed-memory hierarchical rollup of the interval timeline.

The plain :class:`~repro.telemetry.timeline.TimelineRecorder` stores one
row per interval, so a ``--stream`` run of 10^7+ instructions grows its
timeline without bound.  :class:`RollupTimelineRecorder` caps storage at
``max_rows`` rows: whenever an incoming cycle would need a row past the
cap, every series is pair-merged in place (``new[i] = old[2i] +
old[2i+1]``) and the effective interval doubles.  Row count therefore
stays in ``O(log n)`` doublings of the base interval while each merge is
a sum of the exact integer accumulators the plain recorder keeps.

Because interval boundaries at level ``L`` are a subset of the level-0
boundaries and every accumulator is an exact integer until
``finalize``, the rollup's output is *bit-identical* to a plain
``TimelineRecorder`` driven with the same calls at the final effective
interval — and its per-class totals (retired, occupancy integrals, miss
events) equal the unbounded in-memory timeline's totals exactly, at any
chunk size.  The equivalence suite asserts both properties.
"""

from __future__ import annotations

from .timeline import EVENT_FIELDS, TimelineRecorder

__all__ = ["RollupTimelineRecorder"]


def _fold(series: list) -> None:
    """Pair-merge adjacent rows in place; integer sums stay integers.

    In place matters: callers hold direct references to these lists
    (``_bucket`` takes the series as an argument), so rebinding the
    attribute would strand them on the pre-merge rows.
    """
    series[:] = [sum(series[i:i + 2]) for i in range(0, len(series), 2)]


class RollupTimelineRecorder(TimelineRecorder):
    """A :class:`TimelineRecorder` whose storage never exceeds ``max_rows``.

    Drop-in for the plain recorder (same ``retire`` / ``count`` /
    ``occupancy`` / ``finalize`` interface); ``interval`` reflects the
    *current* effective interval (``base_interval << level``).
    """

    def __init__(self, interval: int = 1000, max_rows: int = 512):
        if max_rows < 2:
            raise ValueError("max_rows must be >= 2")
        super().__init__(interval)
        self.base_interval = interval
        self.max_rows = max_rows
        self.level = 0

    def rows(self) -> int:
        """Rows currently stored (the peak-memory figure)."""
        return max(
            len(self._retired),
            len(self._rob),
            len(self._window),
            *(len(self._events[f]) for f in EVENT_FIELDS),
        )

    def _coalesce(self) -> None:
        _fold(self._retired)
        _fold(self._rob)
        _fold(self._window)
        for field in EVENT_FIELDS:
            _fold(self._events[field])
        self.interval <<= 1
        self.level += 1

    def _bucket(self, series: list, cycle: int) -> int:
        while cycle // self.interval >= self.max_rows:
            self._coalesce()
        idx = cycle // self.interval
        while len(series) <= idx:
            series.append(0)
        return idx

    def occupancy(
        self, cycle: int, span: int, rob: int, window: int
    ) -> None:
        """Integrate constant occupancy over ``[cycle, cycle + span)``.

        Re-reads ``self.interval`` every step: ``_bucket`` may coalesce
        mid-span, and a step bounded by a *fine* boundary always nests
        inside the coarser bucket, so the integer sums stay exact.
        """
        while span > 0:
            step = min(span, self.interval - cycle % self.interval)
            idx = self._bucket(self._rob, cycle)
            self._bucket(self._window, cycle)
            self._rob[idx] += rob * step
            self._window[idx] += window * step
            cycle += step
            span -= step
