"""Structured event traces: JSONL and Chrome ``trace_event`` output.

Every miss event, pipeline flush and dispatch-stall span of a simulation
can be captured as a structured record and dumped two ways:

* **JSONL** — one JSON object per line, the stable machine-readable
  schema (``name``, ``cat``, ``ph``, ``ts``, ``dur``, ``args``), with
  cycle timestamps;
* **Chrome trace format** — a ``{"traceEvents": [...]}`` document that
  loads directly into ``chrome://tracing`` or `Perfetto
  <https://ui.perfetto.dev>`_, with one timeline lane per category.

High-event-rate runs can be *sampled*: each event is kept with
probability ``sample_rate``, drawn from a private ``random.Random``
seeded by ``seed`` — the kept subset is a pure function of the emission
sequence and the seed, so sampled traces are reproducible.
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import Iterable

#: event categories, each mapped to its own Chrome-trace thread lane;
#: ``span`` carries wall-clock spans from :mod:`repro.obs`
CATEGORIES = ("frontend", "backend", "memory", "stall", "span")

_TIDS = {cat: tid for tid, cat in enumerate(CATEGORIES)}

#: cycle timestamps are emitted as microseconds so a 1-cycle event is
#: visible at default zoom in the Chrome/Perfetto UI
_PROCESS_NAME = "repro detailed simulator"


class EventTrace:
    """In-memory event sink with deterministic sampling.

    Args:
        sample_rate: probability of keeping each emitted event, in
            ``(0, 1]``; ``1.0`` keeps everything.
        seed: RNG seed for the sampling decisions.
        limit: optional hard cap on stored events (a safety valve for
            very long runs; emission beyond it is counted but dropped).
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        seed: int = 0,
        limit: int | None = None,
    ):
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        self.sample_rate = sample_rate
        self.seed = seed
        self.limit = limit
        self.events: list[dict] = []
        self.emitted = 0    #: events offered (before sampling/limit)
        self.dropped = 0    #: events lost to sampling or the limit
        #: optional ``{pid: display name}`` overrides for Chrome output;
        #: pids absent from the map fall back to a generic label
        self.process_names: dict[int, str] = {}
        #: what one ``ts`` unit means, recorded in ``otherData``
        self.time_unit = "1 ts = 1 cycle"
        self._rng = random.Random(seed)

    def emit(
        self,
        name: str,
        cat: str,
        ts: int,
        dur: int | None = None,
        pid: int | None = None,
        **args,
    ) -> None:
        """Record one event at cycle ``ts`` (span events carry ``dur``).

        ``pid`` assigns the event to a Chrome process lane; events
        without one land in the default lane 0.
        """
        if cat not in _TIDS:
            raise ValueError(f"unknown category {cat!r}; "
                             f"expected one of {CATEGORIES}")
        self.emitted += 1
        if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
            self.dropped += 1
            return
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        event = {
            "name": name,
            "cat": cat,
            "ph": "X" if dur is not None else "i",
            "ts": int(ts),
        }
        if dur is not None:
            event["dur"] = int(dur)
        if pid is not None:
            event["pid"] = int(pid)
        if args:
            event["args"] = args
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def sorted_events(self) -> list[dict]:
        """Events ordered by timestamp (stable for equal ``ts``)."""
        return sorted(self.events, key=lambda e: e["ts"])

    # -- JSONL ------------------------------------------------------------

    def to_jsonl(self) -> str:
        return "\n".join(
            json.dumps(e, sort_keys=True, separators=(",", ":"))
            for e in self.sorted_events()
        ) + ("\n" if self.events else "")

    def write_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl())
        return path

    # -- Chrome trace_event -----------------------------------------------

    def to_chrome(self) -> dict:
        """The ``chrome://tracing`` / Perfetto JSON document."""
        pids = sorted(
            {e.get("pid", 0) for e in self.events}
            | {0}
            | set(self.process_names)
        )
        trace_events: list[dict] = []
        for pid in pids:
            default = _PROCESS_NAME if pid == 0 else f"repro pid {pid}"
            trace_events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": self.process_names.get(pid, default)},
            })
            cats = (
                _TIDS.items()
                if pid == 0
                else sorted(
                    (c, _TIDS[c])
                    for c in {
                        e["cat"] for e in self.events
                        if e.get("pid", 0) == pid
                    }
                )
            )
            for cat, tid in cats:
                trace_events.append({
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": cat},
                })
        for e in self.sorted_events():
            out = {
                "name": e["name"],
                "cat": e["cat"],
                "ph": e["ph"],
                "ts": float(e["ts"]),
                "pid": e.get("pid", 0),
                "tid": _TIDS[e["cat"]],
            }
            if e["ph"] == "X":
                out["dur"] = float(e["dur"])
            else:
                out["s"] = "t"  # instant-event scope: thread
            if "args" in e:
                out["args"] = e["args"]
            trace_events.append(out)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "emitted": self.emitted,
                "dropped": self.dropped,
                "sample_rate": self.sample_rate,
                "seed": self.seed,
                "time_unit": self.time_unit,
            },
        }

    def write_chrome(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome(), sort_keys=True))
        return path


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a JSONL event trace back into event dictionaries."""
    events: list[dict] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events


def merge_traces(traces: Iterable[EventTrace]) -> EventTrace:
    """Combine several traces (e.g. per-shard) into one, re-sorted."""
    merged = EventTrace()
    first = True
    for t in traces:
        merged.events.extend(t.events)
        merged.emitted += t.emitted
        merged.dropped += t.dropped
        merged.process_names.update(t.process_names)
        if first:
            merged.time_unit = t.time_unit
            first = False
    merged.events.sort(key=lambda e: e["ts"])
    return merged
