"""Observability for the reproduction: measurement, not assertion.

The paper's central claim — miss-event penalties independently add — is
rendered by the model as a CPI stack but was never *measured* from the
detailed simulation.  This package turns every run into an explorable
artifact:

* :mod:`repro.telemetry.accountant` — per-cycle stall attribution in
  both simulator engines, producing a measured
  :class:`~repro.telemetry.accountant.MeasuredCPIStack` whose components
  sum to the simulated CPI exactly;
* :mod:`repro.telemetry.timeline` — interval IPC/occupancy/miss-rate
  series with ASCII sparkline rendering (``repro timeline``);
* :mod:`repro.telemetry.rollup` — the fixed-memory hierarchical rollup
  recorder that keeps streamed timelines to ``O(log n)`` rows;
* :mod:`repro.telemetry.events` — structured JSONL and Chrome
  ``trace_event`` traces for ``chrome://tracing`` / Perfetto, with
  deterministic sampling;
* :mod:`repro.telemetry.metrics` — the process-wide
  :class:`~repro.telemetry.metrics.MetricsRegistry` of counters, gauges
  and histograms behind ``repro stats``;
* :mod:`repro.telemetry.manifest` — ``run_manifest.json`` provenance
  records next to experiment outputs;
* :mod:`repro.telemetry.session` — the per-run
  :class:`~repro.telemetry.session.Telemetry` object the engines report
  into, and the ``REPRO_TELEMETRY`` environment knobs.

Telemetry is opt-in and zero-cost when off: without a session attached
the engines skip every collection site, and with one attached they only
read machine state — simulation results are bit-identical either way.
"""

from repro.telemetry.accountant import (
    CLS_BASE,
    CLS_BRANCH,
    CLS_DCACHE_LONG,
    CLS_ICACHE_L1,
    CLS_ICACHE_L2,
    CLS_ROB_FULL,
    CLS_WINDOW_FULL,
    STALL_CLASSES,
    MeasuredCPIStack,
    render_side_by_side,
)
from repro.telemetry.events import EventTrace, merge_traces, read_jsonl
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    git_describe,
    write_manifest,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_registry,
    reset_metrics,
)
from repro.telemetry.session import (
    Telemetry,
    TelemetryConfig,
    TelemetryReport,
    telemetry_enabled,
    telemetry_from_env,
)
from repro.telemetry.rollup import RollupTimelineRecorder
from repro.telemetry.timeline import IntervalTimeline, TimelineRecorder

__all__ = [
    "CLS_BASE",
    "CLS_BRANCH",
    "CLS_DCACHE_LONG",
    "CLS_ICACHE_L1",
    "CLS_ICACHE_L2",
    "CLS_ROB_FULL",
    "CLS_WINDOW_FULL",
    "STALL_CLASSES",
    "MeasuredCPIStack",
    "render_side_by_side",
    "EventTrace",
    "merge_traces",
    "read_jsonl",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "git_describe",
    "write_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_registry",
    "reset_metrics",
    "Telemetry",
    "TelemetryConfig",
    "TelemetryReport",
    "telemetry_enabled",
    "telemetry_from_env",
    "IntervalTimeline",
    "RollupTimelineRecorder",
    "TimelineRecorder",
]
