"""Process-wide metrics: counters, gauges and histograms.

The parallel runner and the artifact cache previously reported their
effectiveness through ad-hoc dataclasses; this registry gives every
subsystem one place to record operational numbers and one place to read
them — ``repro stats`` renders it, and :meth:`MetricsRegistry.to_json`
exports it for dashboards or CI artifacts.

The design follows the usual Prometheus-style trio, sized for an
in-process tool (no label cardinality, no background collection):

* :class:`Counter` — monotonically increasing totals (cache hits, units
  executed);
* :class:`Gauge` — last-written values (pool utilization, worker count);
* :class:`Histogram` — observation streams with count/sum/min/max and
  percentiles (per-unit wall-clock).
"""

from __future__ import annotations

import json
import math
import threading
from typing import Iterable


class Counter:
    """A monotonically increasing integer total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can be set to anything at any time."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += float(delta)

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """An observation stream with summary statistics.

    Observations are kept (bounded by ``keep``, oldest evicted first) so
    percentiles are exact for typical runner scales — thousands of work
    units, not millions of samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "keep", "_samples")

    def __init__(self, name: str, keep: int = 4096):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.keep = keep
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._samples.append(value)
        if len(self._samples) > self.keep:
            del self._samples[: len(self._samples) - self.keep]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile over the retained samples (``q`` in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1)))
        return ordered[idx]

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Name-keyed store of counters, gauges and histograms.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the existing instrument afterwards; asking for an existing name with
    a different type raises.  Thread-safe for instrument creation (the
    runner's pool lives in one process, but experiment code may be
    threaded).
    """

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory(name)
                self._instruments[name] = instrument
                return instrument
        if not isinstance(instrument, factory):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()

    def to_dict(self) -> dict:
        return {
            name: self._instruments[name].snapshot()
            for name in self.names()
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus(self, namespace: str = "repro",
                      labels: dict[str, str] | None = None) -> str:
        """Prometheus text exposition (the service's ``/metrics`` body).

        Instrument names map to ``<namespace>_<name>`` with
        non-identifier characters folded to ``_``; histograms export
        ``_count``/``_sum`` plus exact ``quantile``-labelled samples.
        ``labels`` are attached to every sample — a fleet node passes
        ``{"node": "<node-id>"}`` so scraped series stay distinguishable
        after aggregation across the fleet.
        """
        def mangle(name: str) -> str:
            cleaned = "".join(
                ch if ch.isalnum() or ch == "_" else "_" for ch in name)
            return f"{namespace}_{cleaned}"

        def labelled(extra: dict | None = None) -> str:
            pairs = {**(labels or {}), **(extra or {})}
            if not pairs:
                return ""
            body = ",".join(f'{k}="{v}"' for k, v in sorted(pairs.items()))
            return "{" + body + "}"

        lines: list[str] = []
        for name in self.names():
            snap = self._instruments[name].snapshot()
            metric = mangle(name)
            if snap["type"] == "histogram":
                lines.append(f"# TYPE {metric} summary")
                for q in (0.5, 0.9, 0.99):
                    value = self._instruments[name].percentile(q * 100)
                    lines.append(
                        f'{metric}{labelled({"quantile": q})} {value!r}')
                lines.append(f"{metric}_sum{labelled()} {snap['sum']!r}")
                lines.append(f"{metric}_count{labelled()} {snap['count']}")
            else:
                lines.append(f"# TYPE {metric} {snap['type']}")
                lines.append(f"{metric}{labelled()} {snap['value']!r}")
        return "\n".join(lines) + "\n"

    def render(self, names: Iterable[str] | None = None) -> str:
        """Human-readable one-line-per-metric summary."""
        chosen = sorted(names) if names is not None else self.names()
        lines = []
        for name in chosen:
            snap = self._instruments[name].snapshot()
            if snap["type"] == "histogram":
                lines.append(
                    f"{name:32s} count {snap['count']:>8d}  "
                    f"mean {snap['mean']:.4f}  p50 {snap['p50']:.4f}  "
                    f"p90 {snap['p90']:.4f}  max {snap['max']:.4f}"
                )
            else:
                value = snap["value"]
                shown = (f"{value:d}" if isinstance(value, int)
                         else f"{value:.4f}")
                lines.append(f"{name:32s} {shown}")
        return "\n".join(lines)


#: the process-wide default registry used by the runner and the CLI
_REGISTRY = MetricsRegistry()


def metrics_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _REGISTRY


def reset_metrics() -> MetricsRegistry:
    """Clear the default registry (tests); returns it for convenience."""
    _REGISTRY.reset()
    return _REGISTRY
