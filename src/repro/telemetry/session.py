"""The per-run telemetry session the simulator engines report into.

A :class:`Telemetry` object bundles the three sinks — stall accountant,
interval timeline, event trace — behind the narrow interface both
detailed-simulator engines call.  Telemetry is strictly opt-in: with no
session attached the engines skip every call site (``if tele is not
None``), so disabled telemetry has zero cost and cannot perturb results;
with a session attached, the engines only *read* machine state, so the
simulated cycle count is unchanged either way (the equivalence suite
asserts both properties).

Enable it per call (``DetailedSimulator(..., telemetry=...)``) or
globally via the environment:

``REPRO_TELEMETRY``
    any non-empty value except ``0`` attaches a session to every run
    (accountant + timeline).
``REPRO_TELEMETRY_INTERVAL``
    timeline interval length in cycles (default 1000).
``REPRO_TELEMETRY_TRACE`` / ``REPRO_TELEMETRY_CHROME``
    also capture an event trace, and on :meth:`Telemetry.finish` write
    it to these paths (JSONL / Chrome ``trace_event``).
``REPRO_TELEMETRY_SAMPLE`` / ``REPRO_TELEMETRY_SEED``
    event-trace sampling rate in ``(0, 1]`` and its RNG seed.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.spec import env as _env

from repro.telemetry.accountant import (
    CLS_BASE,
    STALL_CLASSES,
    MeasuredCPIStack,
)
from repro.telemetry.events import EventTrace
from repro.telemetry.rollup import RollupTimelineRecorder
from repro.telemetry.timeline import IntervalTimeline, TimelineRecorder

_log = logging.getLogger(__name__)

_CLASS_COUNT = len(STALL_CLASSES)


@dataclass(frozen=True)
class TelemetryConfig:
    """What a telemetry session should collect and where it should go."""

    interval: int = 1000
    timeline: bool = True
    events: bool = False
    trace_path: str | None = None
    chrome_path: str | None = None
    sample_rate: float = 1.0
    seed: int = 0
    event_limit: int | None = None
    #: cap timeline storage via hierarchical rollup (``None`` = unbounded)
    max_timeline_rows: int | None = None

    @classmethod
    def from_env(cls) -> "TelemetryConfig | None":
        """The configuration selected by ``REPRO_TELEMETRY*``.

        Returns ``None`` when telemetry is not enabled (the variable is
        unset, empty or ``0``).  Reads go through the
        :mod:`repro.spec.env` registry; prefer resolving a
        :class:`repro.spec.TelemetrySpec` where a full spec is in play.
        """
        if not _env.telemetry_flag():
            return None
        trace_path = _env.telemetry_trace_path()
        chrome_path = _env.telemetry_chrome_path()
        return cls(
            interval=_env.telemetry_interval(),
            events=bool(trace_path or chrome_path),
            trace_path=trace_path,
            chrome_path=chrome_path,
            sample_rate=_env.telemetry_sample_rate(),
            seed=_env.telemetry_seed(),
        )


def telemetry_enabled() -> bool:
    """Whether ``REPRO_TELEMETRY`` opts runs into telemetry."""
    return TelemetryConfig.from_env() is not None


def telemetry_from_env() -> "Telemetry | None":
    """A fresh session per the environment, or ``None`` when disabled."""
    config = TelemetryConfig.from_env()
    return Telemetry(config) if config is not None else None


@dataclass(frozen=True)
class TelemetryReport:
    """Everything one simulation run measured."""

    stack: MeasuredCPIStack
    timeline: IntervalTimeline | None
    events: EventTrace | None


class Telemetry:
    """One simulation run's telemetry collection state.

    The engine-facing methods (:meth:`charge`, :meth:`retire`,
    :meth:`occupancy` and the event markers) are called mid-simulation;
    :meth:`finish` seals the session into a :class:`TelemetryReport`.
    A session is single-use: attach a fresh one per run.
    """

    def __init__(self, config: TelemetryConfig | None = None):
        self.config = config or TelemetryConfig()
        self.counts = [0] * _CLASS_COUNT
        if not self.config.timeline:
            self.recorder = None
        elif self.config.max_timeline_rows is not None:
            self.recorder = RollupTimelineRecorder(
                self.config.interval,
                max_rows=self.config.max_timeline_rows,
            )
        else:
            self.recorder = TimelineRecorder(self.config.interval)
        self.events = (
            EventTrace(
                sample_rate=self.config.sample_rate,
                seed=self.config.seed,
                limit=self.config.event_limit,
            )
            if self.config.events else None
        )
        self.report: TelemetryReport | None = None
        #: open dispatch-stall run (class code, start cycle, end cycle)
        self._stall_run: tuple[int, int, int] | None = None

    # -- engine-facing hot-path interface -------------------------------

    def charge(self, cls: int, cycle: int, span: int = 1) -> None:
        """Attribute ``span`` cycles starting at ``cycle`` to ``cls``."""
        self.counts[cls] += span
        if self.events is None:
            return
        run = self._stall_run
        if cls == CLS_BASE:
            if run is not None:
                self._flush_stall_run()
            return
        if run is not None and run[0] == cls and run[2] == cycle:
            self._stall_run = (cls, run[1], cycle + span)
        else:
            if run is not None:
                self._flush_stall_run()
            self._stall_run = (cls, cycle, cycle + span)

    def retire(self, cycle: int, count: int) -> None:
        if self.recorder is not None:
            self.recorder.retire(cycle, count)

    def occupancy(self, cycle: int, span: int, rob: int, window: int) -> None:
        if self.recorder is not None:
            self.recorder.occupancy(cycle, span, rob, window)

    # -- event markers ---------------------------------------------------

    def mark_mispredict(self, cycle: int, index: int) -> None:
        """A mispredicted branch issued (its resolution is now timed)."""
        if self.recorder is not None:
            self.recorder.count("mispredicts", cycle)

    def mark_branch_redirect(
        self, cycle: int, index: int, fetch_stopped: int
    ) -> None:
        """Fetch redirected after a misprediction resolved: the flush."""
        if self.events is not None:
            self.events.emit(
                "branch_mispredict", "frontend", fetch_stopped,
                dur=cycle - fetch_stopped, index=index,
            )
            self.events.emit("pipeline_flush", "frontend", cycle,
                             index=index)

    def mark_icache_stall(
        self, cycle: int, index: int, stall: int, long: bool
    ) -> None:
        """Fetch paid an I-cache miss of ``stall`` cycles."""
        if self.recorder is not None:
            self.recorder.count("icache_misses", cycle)
        if self.events is not None:
            self.events.emit(
                "icache_miss_l2" if long else "icache_miss_l1",
                "frontend", cycle, dur=stall, index=index,
            )

    def mark_long_miss(self, cycle: int, index: int, latency: int) -> None:
        """A long data-cache-missing load issued."""
        if self.recorder is not None:
            self.recorder.count("long_misses", cycle)
        if self.events is not None:
            self.events.emit("dcache_long_miss", "memory", cycle,
                             dur=latency, index=index)

    # -- finalization ----------------------------------------------------

    def _flush_stall_run(self) -> None:
        run = self._stall_run
        if run is None:
            return
        cls, start, end = run
        self._stall_run = None
        self.events.emit(
            "dispatch_stall", "stall", start, dur=end - start,
            cause=STALL_CLASSES[cls],
        )

    def finish(self, name: str, instructions: int, cycles: int
               ) -> TelemetryReport:
        """Seal the session and (if configured) write trace files."""
        if self.events is not None:
            self._flush_stall_run()
        stack = MeasuredCPIStack.from_counts(name, self.counts, instructions)
        if stack.cycles != cycles:
            raise AssertionError(
                f"stall accountant lost cycles: charged {stack.cycles}, "
                f"simulated {cycles}"
            )
        timeline = (
            self.recorder.finalize(cycles, instructions)
            if self.recorder is not None else None
        )
        self.report = TelemetryReport(
            stack=stack, timeline=timeline, events=self.events
        )
        if self.events is not None:
            if self.config.trace_path:
                path = self.events.write_jsonl(self.config.trace_path)
                _log.info("wrote %d trace events to %s",
                          len(self.events), path)
            if self.config.chrome_path:
                path = self.events.write_chrome(self.config.chrome_path)
                _log.info("wrote Chrome trace to %s", path)
        _log.debug(
            "telemetry: %s — measured CPI %.4f over %d intervals",
            name, stack.total,
            timeline.intervals if timeline is not None else 0,
        )
        return self.report
