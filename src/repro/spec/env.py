"""The single home of ``REPRO_*`` environment-variable access.

Every knob the package reads from the environment is declared in
:data:`REGISTRY` and read through a typed accessor in this module —
nothing else in ``src/repro`` touches ``os.environ`` for configuration
(a lint-style test greps the tree and fails on new call sites).  That
discipline is what makes :func:`repro.spec.resolve.resolve_spec`'s
layering honest: the environment is one explicit resolution layer, not
an ambient influence scattered through call sites.

Variables are still read at *call* time, never import time, so tests and
the CLI can monkeypatch them per run.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path

#: every environment variable the package reads, with the consuming
#: subsystem and a one-line description (rendered in docs/CONFIGURATION.md)
REGISTRY: dict[str, tuple[str, str]] = {
    "REPRO_SPEC": (
        "spec", "path of a RunSpec JSON file merged during resolution"),
    "REPRO_SIM_ENGINE": (
        "engine", "simulation engine: 'fast' (default) or 'reference'"),
    "REPRO_CACHE_DIR": (
        "cache", "artifact-cache root (default $XDG_CACHE_HOME/repro-firstorder)"),
    "REPRO_CACHE_DISABLE": (
        "cache", "any non-empty value bypasses the artifact cache"),
    "REPRO_TELEMETRY": (
        "telemetry", "non-empty and not '0' attaches telemetry to every run"),
    "REPRO_TELEMETRY_INTERVAL": (
        "telemetry", "timeline interval length in cycles (default 1000)"),
    "REPRO_TELEMETRY_TRACE": (
        "telemetry", "write the event trace to this JSONL path"),
    "REPRO_TELEMETRY_CHROME": (
        "telemetry", "write a Chrome trace_event file to this path"),
    "REPRO_TELEMETRY_SAMPLE": (
        "telemetry", "event-trace sampling rate in (0, 1] (default 1)"),
    "REPRO_TELEMETRY_SEED": (
        "telemetry", "event-trace sampling RNG seed (default 0)"),
    "REPRO_OBS": (
        "obs", "non-empty and not '0' collects wall-clock spans"),
    "REPRO_OBS_TRACE": (
        "obs", "write collected spans to this JSONL path after a run"),
    "REPRO_OBS_CHROME": (
        "obs", "write collected spans as a Chrome trace_event file"),
    "REPRO_CHAOS_KILL_BENCH": (
        "chaos", "hard-kill the pool worker that picks up this benchmark"),
    "REPRO_EXPLORE_KILL_AFTER": (
        "chaos", "hard-exit an explore search after this many newly "
                 "recorded detailed results (checkpoint/resume drills)"),
}


def _get(name: str) -> str | None:
    assert name in REGISTRY or name == "XDG_CACHE_HOME", name
    return os.environ.get(name)


# -- spec layer --------------------------------------------------------------


def spec_file() -> str | None:
    """``REPRO_SPEC`` — spec file merged by :func:`resolve_spec`."""
    return _get("REPRO_SPEC") or None


# -- engine ------------------------------------------------------------------


def sim_engine() -> str | None:
    """``REPRO_SIM_ENGINE`` normalized to lower case, or ``None``.

    Validation lives with the engine registry in
    :mod:`repro.fastpath`; this just reads.
    """
    name = (_get("REPRO_SIM_ENGINE") or "").strip().lower()
    return name or None


# -- artifact cache ----------------------------------------------------------


def cache_disabled() -> bool:
    """``REPRO_CACHE_DISABLE`` — truthy when the cache is bypassed."""
    return bool(_get("REPRO_CACHE_DISABLE"))


def cache_dir() -> Path:
    """The artifact-cache root (``REPRO_CACHE_DIR`` wins)."""
    override = _get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-firstorder"


@contextlib.contextmanager
def cache_disabled_scope():
    """Temporarily force ``REPRO_CACHE_DISABLE=1`` (bench cold timings)."""
    prior = os.environ.get("REPRO_CACHE_DISABLE")
    os.environ["REPRO_CACHE_DISABLE"] = "1"
    try:
        yield
    finally:
        if prior is None:
            del os.environ["REPRO_CACHE_DISABLE"]
        else:
            os.environ["REPRO_CACHE_DISABLE"] = prior


@contextlib.contextmanager
def cache_dir_scope(path):
    """Temporarily point ``REPRO_CACHE_DIR`` at ``path`` (bench isolation)."""
    prior = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    try:
        yield
    finally:
        if prior is None:
            del os.environ["REPRO_CACHE_DIR"]
        else:
            os.environ["REPRO_CACHE_DIR"] = prior


# -- telemetry ---------------------------------------------------------------


def telemetry_flag() -> bool:
    """``REPRO_TELEMETRY`` — enabled unless unset, empty or ``0``."""
    flag = (_get("REPRO_TELEMETRY") or "").strip()
    return bool(flag) and flag != "0"


def telemetry_interval() -> int:
    return int(_get("REPRO_TELEMETRY_INTERVAL") or "1000")


def telemetry_trace_path() -> str | None:
    return _get("REPRO_TELEMETRY_TRACE") or None


def telemetry_chrome_path() -> str | None:
    return _get("REPRO_TELEMETRY_CHROME") or None


def telemetry_sample_rate() -> float:
    return float(_get("REPRO_TELEMETRY_SAMPLE") or "1")


def telemetry_seed() -> int:
    return int(_get("REPRO_TELEMETRY_SEED") or "0")


def telemetry_overrides() -> dict:
    """The TelemetrySpec fields the environment explicitly sets.

    Only variables actually present contribute, so spec-file and CLI
    layers keep their values for everything the environment is silent
    about (:func:`repro.spec.resolve.resolve_spec`'s precedence).
    """
    out: dict = {}
    if _get("REPRO_TELEMETRY") is not None:
        out["enabled"] = telemetry_flag()
    if _get("REPRO_TELEMETRY_INTERVAL") is not None:
        out["interval"] = telemetry_interval()
    trace_path = telemetry_trace_path()
    chrome_path = telemetry_chrome_path()
    if trace_path:
        out["trace_path"] = trace_path
    if chrome_path:
        out["chrome_path"] = chrome_path
    if trace_path or chrome_path:
        out["events"] = True
    if _get("REPRO_TELEMETRY_SAMPLE") is not None:
        out["sample_rate"] = telemetry_sample_rate()
    if _get("REPRO_TELEMETRY_SEED") is not None:
        out["seed"] = telemetry_seed()
    return out


# -- observability -----------------------------------------------------------


def obs_flag() -> bool:
    """``REPRO_OBS`` — enabled unless unset, empty or ``0``."""
    flag = (_get("REPRO_OBS") or "").strip()
    return bool(flag) and flag != "0"


def obs_trace_path() -> str | None:
    return _get("REPRO_OBS_TRACE") or None


def obs_chrome_path() -> str | None:
    return _get("REPRO_OBS_CHROME") or None


def obs_overrides() -> dict:
    """The ObsSpec fields the environment explicitly sets.

    Mirrors :func:`telemetry_overrides`: only variables actually present
    contribute, and an export path implies collection.
    """
    out: dict = {}
    if _get("REPRO_OBS") is not None:
        out["enabled"] = obs_flag()
    trace_path = obs_trace_path()
    chrome_path = obs_chrome_path()
    if trace_path:
        out["trace_path"] = trace_path
    if chrome_path:
        out["chrome_path"] = chrome_path
    if (trace_path or chrome_path) and "enabled" not in out:
        out["enabled"] = True
    return out


# -- chaos -------------------------------------------------------------------


def chaos_kill_bench() -> str | None:
    """``REPRO_CHAOS_KILL_BENCH`` — the crash-drill benchmark, if any."""
    return _get("REPRO_CHAOS_KILL_BENCH") or None


def explore_kill_after() -> int | None:
    """``REPRO_EXPLORE_KILL_AFTER`` — detailed results before the
    explore engine hard-exits (``None`` disables the drill)."""
    raw = (_get("REPRO_EXPLORE_KILL_AFTER") or "").strip()
    return int(raw) if raw else None


# -- manifest echo -----------------------------------------------------------


def process_environment() -> dict[str, str]:
    """A mutable copy of the whole environment, for spawning children.

    Spawners (e.g. :mod:`repro.fleet.nodes`) layer their per-child
    overrides — a private ``REPRO_CACHE_DIR``, ``PYTHONPATH`` — on top
    of this; keeping the read here preserves the invariant that only
    the registry touches ``os.environ``.
    """
    return dict(os.environ)


def repro_environment() -> dict[str, str]:
    """Every set ``REPRO_*`` variable, for the run manifest.

    Unregistered ``REPRO_*`` names are echoed too — a manifest should
    record what was in the environment, not what we expected to be.
    """
    return {
        name: os.environ[name]
        for name in sorted(os.environ)
        if name.startswith("REPRO_")
    }
