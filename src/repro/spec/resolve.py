"""Layered resolution of a :class:`~repro.spec.specs.RunSpec`.

Four layers, later wins, each one explicit and testable:

1. **package defaults** — the dataclass defaults (the paper baseline);
2. **spec file** — ``--spec path.json`` or ``REPRO_SPEC=path.json``;
3. **environment** — the ``REPRO_*`` registry (engine, telemetry);
4. **overrides** — CLI flags, passed as a (possibly nested) dict.

The result is a fully-validated :class:`RunSpec`; resolution failures
raise :class:`~repro.spec.specs.SpecError` with the offending layer in
the message.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping

from repro.spec import env
from repro.spec.specs import RunSpec, SpecError


def load_spec_file(path: str | Path) -> RunSpec:
    """Parse ``path`` as a strict RunSpec JSON document."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise SpecError(f"cannot read spec file {path}: {exc}") from exc
    try:
        return RunSpec.from_json(text)
    except SpecError as exc:
        raise SpecError(f"spec file {path}: {exc}") from exc


def _deep_merge(base: dict, overlay: Mapping[str, Any]) -> dict:
    """Nested-dict merge; overlay scalars replace, objects recurse."""
    out = dict(base)
    for key, value in overlay.items():
        if (isinstance(value, Mapping) and isinstance(out.get(key), dict)):
            out[key] = _deep_merge(out[key], value)
        else:
            out[key] = value
    return out


def _env_layer() -> dict:
    """What the ``REPRO_*`` environment contributes to resolution.

    This is the registry-blessed read path: the environment is one
    explicit resolution layer, consulted here rather than deep inside
    call sites.
    """
    layer: dict = {}
    engine = env.sim_engine()
    if engine is not None:
        layer["engine"] = {"engine": engine}
    telemetry = env.telemetry_overrides()
    if telemetry:
        layer["telemetry"] = telemetry
    obs = env.obs_overrides()
    if obs:
        layer["obs"] = obs
    return layer


def resolve_spec(
    path: str | Path | None = None,
    overrides: Mapping[str, Any] | None = None,
    base: RunSpec | None = None,
    use_env: bool = True,
) -> RunSpec:
    """Resolve the effective :class:`RunSpec` for one run.

    ``path`` is the ``--spec`` file (``REPRO_SPEC`` is consulted when it
    is ``None``); ``overrides`` is the top layer (CLI flags), shaped
    like the spec JSON (``{"workload": {"benchmark": "gzip"}, ...}``).
    ``base`` replaces the package-default bottom layer.  The workload
    benchmark must be supplied by *some* layer.
    """
    data: dict = base.to_dict() if base is not None else {}
    data.pop("spec_schema", None)

    path = path if path is not None else env.spec_file()
    if path is not None:
        file_spec = load_spec_file(path)
        data = _deep_merge(data, file_spec.to_dict())

    if use_env:
        data = _deep_merge(data, _env_layer())

    if overrides:
        data = _deep_merge(data, dict(overrides))

    if "workload" not in data or "benchmark" not in data["workload"]:
        raise SpecError(
            "no layer supplied a workload benchmark; pass --spec, set "
            "REPRO_SPEC, or name a benchmark"
        )
    return RunSpec.from_dict(data)
