"""Co-run specifications: multiple workloads sharing one machine's L2.

A :class:`CoRunSpec` describes a multi-programmed scenario — an *ordered*
list of at least two :class:`WorkloadSpec`s co-scheduled on a single
:class:`MachineSpec` whose unified L2 they share — plus an
:class:`InterleaveSpec` pinning how the per-workload access streams merge.
It reuses the canonical-JSON / content-key machinery of
:mod:`repro.spec.specs` verbatim, so co-run results cache, coalesce and
shard through the runner, service and fleet exactly like single-workload
results: one spec, one key, wherever it is evaluated.

Workload order is significant (it breaks interleave ties and labels the
result rows), so two co-runs of the same set in different orders key
differently on purpose.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any

from repro.spec.specs import (
    SPEC_SCHEMA,
    MachineSpec,
    SpecError,
    WorkloadSpec,
    _check_fields,
    _construct,
    _require_mapping,
)

__all__ = ["CORUN_SCHEMA", "INTERLEAVE_POLICIES", "CoRunSpec",
           "InterleaveSpec"]

#: co-run wire-format version; history:
#:   1 — initial (workloads + machine + interleave)
CORUN_SCHEMA = 1

#: recognized interleave policies (see :mod:`repro.corun.interleave`)
INTERLEAVE_POLICIES = ("cpi", "round_robin")


@dataclass(frozen=True)
class InterleaveSpec:
    """How per-workload access streams merge onto the shared L2.

    ``policy="cpi"`` advances each workload in proportion to its solo
    execution rate (cycle-proportional: the workload with the least
    consumed virtual time goes next), which is the deterministic stand-in
    for "both cores run concurrently".  ``policy="round_robin"`` alternates
    fixed ``quantum``-instruction turns.  Both are fully deterministic;
    ``seed`` is pinned into the content key so any future stochastic
    policy cannot silently alias results with a deterministic one.
    """

    policy: str = "cpi"
    quantum: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.policy not in INTERLEAVE_POLICIES:
            raise SpecError(
                f"unknown interleave policy {self.policy!r}; one of "
                + ", ".join(INTERLEAVE_POLICIES)
            )
        if (not isinstance(self.quantum, int)
                or isinstance(self.quantum, bool) or self.quantum < 1):
            raise SpecError("interleave quantum must be a positive integer")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise SpecError("interleave seed must be an integer")

    @classmethod
    def from_dict(cls, data: Any) -> "InterleaveSpec":
        return _construct(
            cls,
            _check_fields(_require_mapping(data, "interleave"), cls,
                          "interleave"),
            "interleave")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class CoRunSpec:
    """One multi-programmed co-run: ≥2 workloads over a shared L2."""

    workloads: tuple[WorkloadSpec, ...]
    machine: MachineSpec = field(default_factory=MachineSpec)
    interleave: InterleaveSpec = field(default_factory=InterleaveSpec)

    def __post_init__(self) -> None:
        if isinstance(self.workloads, list):
            object.__setattr__(self, "workloads", tuple(self.workloads))
        if not isinstance(self.workloads, tuple) or not all(
                isinstance(w, WorkloadSpec) for w in self.workloads):
            raise SpecError("co-run workloads must be a list of workloads")
        if len(self.workloads) < 2:
            raise SpecError(
                f"a co-run needs at least 2 workloads, got "
                f"{len(self.workloads)}")
        if not isinstance(self.machine, MachineSpec):
            raise SpecError("co-run machine must be a machine spec")
        if not isinstance(self.interleave, InterleaveSpec):
            raise SpecError("co-run interleave must be an interleave spec")

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "spec_schema": SPEC_SCHEMA,
            "corun_schema": CORUN_SCHEMA,
            "machine": self.machine.to_dict(),
            "workloads": [w.to_dict() for w in self.workloads],
            "interleave": self.interleave.to_dict(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Any) -> "CoRunSpec":
        out = _require_mapping(data, "corun spec")
        schema = out.pop("spec_schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise SpecError(
                f"unsupported spec_schema {schema!r} (this release reads "
                f"{SPEC_SCHEMA})"
            )
        corun_schema = out.pop("corun_schema", CORUN_SCHEMA)
        if corun_schema != CORUN_SCHEMA:
            raise SpecError(
                f"unsupported corun_schema {corun_schema!r} (this release "
                f"reads {CORUN_SCHEMA})"
            )
        unknown = set(out) - {"machine", "workloads", "interleave"}
        if unknown:
            raise SpecError(
                f"unknown corun spec section(s): {sorted(unknown)}")
        if "workloads" not in out:
            raise SpecError("a corun spec requires a 'workloads' section")
        workloads = out["workloads"]
        if not isinstance(workloads, list):
            raise SpecError("corun 'workloads' must be a JSON array")
        return cls(
            workloads=tuple(
                WorkloadSpec.from_dict(w) for w in workloads),
            machine=MachineSpec.from_dict(out.get("machine", {})),
            interleave=InterleaveSpec.from_dict(out.get("interleave", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "CoRunSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"corun spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # -- keying ----------------------------------------------------------

    def canonical(self) -> dict:
        """Fully-resolved canonical form (workload seeds resolved)."""
        out = self.to_dict()
        out["workloads"] = [w.canonical() for w in self.workloads]
        return out

    def result_recipe(self) -> dict:
        """What the co-run result is a pure function of.

        The shared machine, every resolved workload *in order*, and the
        interleave policy.  Engine/telemetry-style knobs do not exist at
        this level: the co-run reference path always runs the detailed
        timing engines with telemetry on.
        """
        return {
            "spec_schema": SPEC_SCHEMA,
            "corun_schema": CORUN_SCHEMA,
            "machine": self.machine.canonical(),
            "workloads": [w.canonical() for w in self.workloads],
            "interleave": self.interleave.to_dict(),
        }

    def content_key(self) -> str:
        """The artifact-cache key of this co-run's result.

        Shared by in-process execution (:func:`repro.corun.run_corun`),
        the ``repro corun`` CLI, and the ``corun`` service op — one spec,
        one key, one cache entry, one coalescing/fleet shard.
        """
        from repro.runner.artifacts import artifact_key

        return artifact_key("corun", self.result_recipe())

    def solo_spec(self, index: int) -> "Any":
        """The single-workload :class:`RunSpec` for ``workloads[index]``.

        Solo runs use the same machine with a private L2 — the baseline
        each workload's interference metrics are measured against.
        """
        from repro.spec.specs import RunSpec

        return RunSpec(workload=self.workloads[index], machine=self.machine)
