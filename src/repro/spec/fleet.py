"""FleetSpec — the typed description of a multi-node evaluation fleet.

A fleet is N worker nodes (each one a :mod:`repro.service` process with
its own scheduler, pool and artifact cache) behind one router
(:mod:`repro.fleet.router`) that consistent-hashes every request by its
:meth:`repro.spec.RunSpec.content_key` so each node's cache stays hot
for its shard.  The spec pins everything placement depends on — node
addresses, hash seed, virtual-node count, replication factor — so two
routers built from the same spec place every key identically (the
deterministic-rebalance property the fleet tests assert).

Like the other specs this is frozen, plain-data, and round-trips
through ``from_dict``/``to_dict`` with unknown-field rejection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.spec.specs import (
    SpecError,
    _check_fields,
    _construct,
    _require_mapping,
)


def _check_address(address: Any) -> str:
    """Validate one ``host:port`` node address."""
    if not isinstance(address, str) or ":" not in address:
        raise SpecError(
            f"fleet node must be a 'host:port' string, got {address!r}")
    host, _, port = address.rpartition(":")
    if not host:
        raise SpecError(f"fleet node {address!r} has an empty host")
    try:
        number = int(port)
    except ValueError:
        raise SpecError(
            f"fleet node {address!r} has a non-integer port") from None
    if not 0 < number < 65536:
        raise SpecError(f"fleet node {address!r} port out of range")
    return address


@dataclass(frozen=True)
class FleetSpec:
    """Topology and placement policy of an evaluation fleet.

    Attributes:
        nodes: worker addresses (``host:port``); order does not affect
            placement (the ring sorts by hash), but duplicates are an
            error.
        replication: how many distinct ring targets a key may be served
            from (owner first, then clockwise siblings) — the failover
            and peek fan-out bound.
        hash_seed: seed folded into every ring hash; pin it to make
            placement reproducible across processes and runs.
        vnodes: virtual nodes per physical node — more vnodes, smoother
            balance, slower ring construction.
        load_factor: bounded-load ceiling as a multiple of the mean
            outstanding load (``1.25`` = no node takes more than 125%
            of the average before the ring walks on).
        peek: ask ring targets for a cached response (the ``peek`` op)
            before forwarding the full request.
        health_interval_s: seconds between router ``/healthz`` probes.
    """

    nodes: tuple[str, ...] = field(default_factory=tuple)
    replication: int = 2
    hash_seed: int = 0
    vnodes: int = 64
    load_factor: float = 1.25
    peek: bool = True
    health_interval_s: float = 1.0

    def __post_init__(self):
        object.__setattr__(self, "nodes", tuple(self.nodes))
        for address in self.nodes:
            _check_address(address)
        if len(set(self.nodes)) != len(self.nodes):
            raise SpecError("fleet nodes must be unique")
        if not isinstance(self.replication, int) or self.replication < 1:
            raise SpecError("fleet replication must be a positive integer")
        if not isinstance(self.vnodes, int) or self.vnodes < 1:
            raise SpecError("fleet vnodes must be a positive integer")
        if not isinstance(self.hash_seed, int):
            raise SpecError("fleet hash_seed must be an integer")
        if self.load_factor < 1.0:
            raise SpecError("fleet load_factor must be >= 1.0")
        if self.health_interval_s <= 0:
            raise SpecError("fleet health_interval_s must be positive")

    @classmethod
    def from_dict(cls, data: Any) -> "FleetSpec":
        out = _check_fields(_require_mapping(data, "fleet"), cls, "fleet")
        if "nodes" in out:
            if not isinstance(out["nodes"], (list, tuple)):
                raise SpecError("fleet nodes must be a list")
            out["nodes"] = tuple(out["nodes"])
        return _construct(cls, out, "fleet")

    def to_dict(self) -> dict:
        return {
            "nodes": list(self.nodes),
            "replication": self.replication,
            "hash_seed": self.hash_seed,
            "vnodes": self.vnodes,
            "load_factor": self.load_factor,
            "peek": self.peek,
            "health_interval_s": self.health_interval_s,
        }


__all__ = ["FleetSpec"]
