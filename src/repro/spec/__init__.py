"""Unified run specifications: one typed, content-addressed description
of a run, threaded through engines, experiments, runner, service and CLI.

See docs/CONFIGURATION.md for the schema, the resolution precedence
(defaults → spec file → environment → CLI flags) and the environment-
variable registry (:mod:`repro.spec.env`).
"""

from repro.spec.corun import CORUN_SCHEMA, CoRunSpec, InterleaveSpec
from repro.spec.fleet import FleetSpec
from repro.spec.specs import (
    PREDICTORS,
    SPEC_SCHEMA,
    CacheSpec,
    EngineSpec,
    HierarchySpec,
    MachineSpec,
    ObsSpec,
    RunSpec,
    SpecError,
    SweepSpec,
    TelemetrySpec,
    WorkloadSpec,
    canonical_json,
)
from repro.spec.resolve import load_spec_file, resolve_spec

__all__ = [
    "CORUN_SCHEMA",
    "PREDICTORS",
    "SPEC_SCHEMA",
    "CacheSpec",
    "CoRunSpec",
    "EngineSpec",
    "FleetSpec",
    "InterleaveSpec",
    "HierarchySpec",
    "MachineSpec",
    "ObsSpec",
    "RunSpec",
    "SpecError",
    "SweepSpec",
    "TelemetrySpec",
    "WorkloadSpec",
    "canonical_json",
    "load_spec_file",
    "resolve_spec",
]
