"""Typed, frozen run specifications with canonical JSON and stable keys.

The paper's methodology lives or dies on like-for-like comparison: the
analytical model and the detailed simulator must be driven by the *same*
machine description.  A :class:`RunSpec` makes that guarantee structural:
one validated, serializable object names the machine
(:class:`MachineSpec`), the workload (:class:`WorkloadSpec`), how to
execute (:class:`EngineSpec`) and what to measure
(:class:`TelemetrySpec`).  Its :meth:`RunSpec.content_key` is *the*
artifact-cache key for the simulation result and the service's
request-coalescing key, so an identical question asked in-process,
through the parallel runner, or over the wire is answered — and cached —
identically.

Keying rules
------------
``content_key()`` covers exactly what can change the simulation result:
the machine, the fully-resolved workload (``seed=None`` resolves to the
benchmark profile's deterministic default *before* keying — the seed
never aliases), and the ``instrument`` flag (it changes the payload).
The engine is deliberately excluded — the fast and reference kernels are
bit-identical (enforced by the equivalence suite) — and telemetry is
excluded because it only observes (disabled telemetry is bit-identical,
also enforced).

:class:`SweepSpec` turns a parameter sweep into data: a base spec, a
benchmark axis and dotted-path value axes expand deterministically into
the grid of ``RunSpec``s that ``run_units`` (or a future sharded
backend) executes.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping

from repro.branch import (
    Bimodal,
    GShare,
    IdealPredictor,
    LocalHistory,
    PessimalPredictor,
    StaticPredictor,
    Tournament,
)
from repro.config import ProcessorConfig
from repro.isa.latency import DEFAULT_LATENCIES, LatencyTable
from repro.isa.opclass import OpClass
from repro.memory.config import CacheGeometry, HierarchyConfig

#: bump when the canonical spec layout changes; part of every content key
SPEC_SCHEMA = 1

#: named direction predictors a spec can select
PREDICTORS: dict[str, Callable] = {
    "gshare": GShare,
    "bimodal": Bimodal,
    "static": StaticPredictor,
    "ideal": IdealPredictor,
    "pessimal": PessimalPredictor,
    "local": LocalHistory,
    "tournament": Tournament,
}


class SpecError(ValueError):
    """A spec could not be validated, parsed, or derived."""


def canonical_json(data: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _require_mapping(data: Any, what: str) -> dict:
    if not isinstance(data, Mapping):
        raise SpecError(f"{what} must be a JSON object, got "
                        f"{type(data).__name__}")
    return dict(data)


def _check_fields(data: dict, cls: type, what: str) -> dict:
    allowed = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - allowed
    if unknown:
        raise SpecError(f"unknown {what} field(s): {sorted(unknown)}; "
                        f"expected a subset of {sorted(allowed)}")
    return data


def _construct(cls, data: dict, what: str):
    try:
        return cls(**data)
    except (TypeError, ValueError) as exc:
        if isinstance(exc, SpecError):
            raise
        raise SpecError(f"invalid {what}: {exc}") from exc


# -- machine -----------------------------------------------------------------


@dataclass(frozen=True)
class CacheSpec:
    """Geometry of one cache, mirroring :class:`CacheGeometry`."""

    size_bytes: int
    associativity: int = 4
    line_bytes: int = 128

    def __post_init__(self) -> None:
        self.to_geometry()

    def to_geometry(self) -> CacheGeometry:
        try:
            return CacheGeometry(self.size_bytes, self.associativity,
                                 self.line_bytes)
        except ValueError as exc:
            raise SpecError(f"invalid cache geometry: {exc}") from exc

    @classmethod
    def from_geometry(cls, geometry: CacheGeometry) -> "CacheSpec":
        return cls(size_bytes=geometry.size_bytes,
                   associativity=geometry.associativity,
                   line_bytes=geometry.line_bytes)

    @classmethod
    def from_dict(cls, data: Any) -> "CacheSpec":
        return _construct(
            cls, _check_fields(_require_mapping(data, "cache"), cls, "cache"),
            "cache geometry")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class HierarchySpec:
    """The two-level cache hierarchy, mirroring :class:`HierarchyConfig`."""

    l1i: CacheSpec = field(default_factory=lambda: CacheSpec(4 * 1024))
    l1d: CacheSpec = field(default_factory=lambda: CacheSpec(4 * 1024))
    l2: CacheSpec = field(default_factory=lambda: CacheSpec(512 * 1024))
    l2_latency: int = 8
    memory_latency: int = 200
    ideal_icache: bool = False
    ideal_dcache: bool = False

    def __post_init__(self) -> None:
        self.to_config()

    def to_config(self) -> HierarchyConfig:
        try:
            return HierarchyConfig(
                l1i=self.l1i.to_geometry(),
                l1d=self.l1d.to_geometry(),
                l2=self.l2.to_geometry(),
                l2_latency=self.l2_latency,
                memory_latency=self.memory_latency,
                ideal_icache=self.ideal_icache,
                ideal_dcache=self.ideal_dcache,
            )
        except ValueError as exc:
            raise SpecError(f"invalid hierarchy: {exc}") from exc

    @classmethod
    def from_config(cls, config: HierarchyConfig) -> "HierarchySpec":
        return cls(
            l1i=CacheSpec.from_geometry(config.l1i),
            l1d=CacheSpec.from_geometry(config.l1d),
            l2=CacheSpec.from_geometry(config.l2),
            l2_latency=config.l2_latency,
            memory_latency=config.memory_latency,
            ideal_icache=config.ideal_icache,
            ideal_dcache=config.ideal_dcache,
        )

    @classmethod
    def from_dict(cls, data: Any) -> "HierarchySpec":
        out = _check_fields(
            _require_mapping(data, "hierarchy"), cls, "hierarchy")
        for name in ("l1i", "l1d", "l2"):
            if name in out:
                out[name] = CacheSpec.from_dict(out[name])
        return _construct(cls, out, "hierarchy")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class MachineSpec:
    """The modeled machine, by value — a serializable
    :class:`~repro.config.ProcessorConfig`.

    ``predictor`` names an entry of :data:`PREDICTORS` (the paper
    baseline is the 8K gShare); ``latencies`` maps lower-case opclass
    names to cycle counts, defaulting to the package's SimpleScalar-
    flavoured table.
    """

    pipeline_depth: int = 5
    width: int = 4
    window_size: int = 48
    rob_size: int = 128
    predictor: str = "gshare"
    ideal_predictor: bool = False
    hierarchy: HierarchySpec = field(default_factory=HierarchySpec)
    latencies: Mapping[str, int] = field(
        default_factory=lambda: {
            c.name.lower(): l for c, l in DEFAULT_LATENCIES.items()
        }
    )

    def __post_init__(self) -> None:
        if self.predictor not in PREDICTORS:
            raise SpecError(
                f"unknown predictor {self.predictor!r}; one of "
                + ", ".join(sorted(PREDICTORS))
            )
        object.__setattr__(self, "latencies", dict(self.latencies))
        self.to_config()

    def to_config(self) -> ProcessorConfig:
        """The :class:`ProcessorConfig` this spec describes."""
        try:
            table = LatencyTable({
                OpClass[name.upper()]: lat
                for name, lat in self.latencies.items()
            })
        except KeyError as exc:
            raise SpecError(f"unknown opclass in latencies: {exc}") from exc
        except ValueError as exc:
            raise SpecError(f"invalid latencies: {exc}") from exc
        try:
            return ProcessorConfig(
                pipeline_depth=self.pipeline_depth,
                width=self.width,
                window_size=self.window_size,
                rob_size=self.rob_size,
                latencies=table,
                hierarchy=self.hierarchy.to_config(),
                predictor_factory=PREDICTORS[self.predictor],
                ideal_predictor=self.ideal_predictor,
            )
        except ValueError as exc:
            raise SpecError(f"invalid machine: {exc}") from exc

    @classmethod
    def from_config(cls, config: ProcessorConfig) -> "MachineSpec":
        """Describe ``config`` as a spec.

        Raises :class:`SpecError` when the configuration is not
        expressible — e.g. a predictor factory outside
        :data:`PREDICTORS` (a ``functools.partial``, a custom class).
        Callers with such configs fall back to the generic dataclass
        canonicalization of :mod:`repro.runner.artifacts`.
        """
        for name, factory in PREDICTORS.items():
            if config.predictor_factory is factory:
                predictor = name
                break
        else:
            raise SpecError(
                f"predictor factory {config.predictor_factory!r} has no "
                "spec name; only registry predictors are spec-expressible"
            )
        return cls(
            pipeline_depth=config.pipeline_depth,
            width=config.width,
            window_size=config.window_size,
            rob_size=config.rob_size,
            predictor=predictor,
            ideal_predictor=config.ideal_predictor,
            hierarchy=HierarchySpec.from_config(config.hierarchy),
            latencies={
                c.name.lower(): l for c, l in config.latencies.latencies.items()
            },
        )

    @classmethod
    def from_dict(cls, data: Any) -> "MachineSpec":
        out = _check_fields(_require_mapping(data, "machine"), cls, "machine")
        if "hierarchy" in out:
            out["hierarchy"] = HierarchySpec.from_dict(out["hierarchy"])
        return _construct(cls, out, "machine")

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["latencies"] = dict(sorted(self.latencies.items()))
        return out

    def canonical(self) -> dict:
        """The keying form: plain data, fully sorted."""
        return self.to_dict()


# -- workload ----------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload trace: source-tagged benchmark, length, RNG seed.

    ``benchmark`` names a trace through the :mod:`repro.trace.sources`
    registry: a bare profile name (``"gzip"``, the canonical synthetic
    spelling), ``synthetic:<name>`` (normalized to the bare name at
    construction), or ``ingest:<key-or-path>`` for a foreign trace
    normalized into the chunk store by :mod:`repro.ingest` (a path
    spelling ingests the file and normalizes to its content key).

    ``seed=None`` means the source's own deterministic default (the
    profile seed for synthetic workloads; 0 for ingested traces, which
    carry no RNG and reject explicit seeds); :meth:`resolved_seed` makes
    that explicit, and the canonical form always carries the resolved
    seed so ``seed=None`` and the spelled-out default can never alias to
    different cache entries.
    """

    benchmark: str
    length: int = 30_000
    seed: int | None = None

    def __post_init__(self) -> None:
        from repro.trace.sources import get_source, parse_benchmark

        if not isinstance(self.benchmark, str):
            raise SpecError("workload benchmark must be a string")
        if (not isinstance(self.length, int)
                or isinstance(self.length, bool) or self.length < 1):
            raise SpecError("workload length must be a positive integer")
        if self.seed is not None and (
                not isinstance(self.seed, int) or isinstance(self.seed, bool)):
            raise SpecError("workload seed must be an integer or null")
        scheme, ref = parse_benchmark(self.benchmark)
        benchmark, length = get_source(scheme).normalize(
            ref, self.length, self.seed)
        if benchmark != self.benchmark:
            object.__setattr__(self, "benchmark", benchmark)
        if length != self.length:
            object.__setattr__(self, "length", length)

    def source(self) -> tuple[str, str]:
        """This workload's ``(scheme, reference)`` pair."""
        from repro.trace.sources import parse_benchmark

        return parse_benchmark(self.benchmark)

    def resolved_seed(self) -> int:
        """The effective RNG seed (source default when ``seed=None``)."""
        if self.seed is not None:
            return self.seed
        from repro.trace.sources import get_source, parse_benchmark

        scheme, ref = parse_benchmark(self.benchmark)
        return get_source(scheme).default_seed(ref)

    def with_benchmark(self, benchmark: str) -> "WorkloadSpec":
        """This workload shape applied to another benchmark."""
        return replace(self, benchmark=benchmark)

    @classmethod
    def from_dict(cls, data: Any) -> "WorkloadSpec":
        return _construct(
            cls,
            _check_fields(_require_mapping(data, "workload"), cls, "workload"),
            "workload")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def canonical(self) -> dict:
        """The keying form — seed resolved, never ``None``."""
        return {"benchmark": self.benchmark, "length": self.length,
                "seed": self.resolved_seed()}


# -- engine ------------------------------------------------------------------


@dataclass(frozen=True)
class EngineSpec:
    """How to execute: kernel choice and runner knobs.

    Nothing here may change a simulation's *result* (the equivalence
    suite enforces engine bit-identity), which is why no field of this
    spec except ``instrument`` — which changes the payload shape —
    participates in :meth:`RunSpec.content_key`.
    """

    engine: str = "fast"
    instrument: bool = False
    jobs: int | None = None
    reuse_results: bool = False
    #: run the O(chunk)-memory streaming pipeline (chunked trace
    #: delivery -> streaming functional pass -> streaming detailed
    #: engine); bit-identical to the in-memory path for every chunk size
    stream: bool = False
    #: chunk granularity for ``stream`` runs (``None`` = the substrate
    #: default, :data:`repro.trace.vectorgen.DEFAULT_CHUNK_SIZE`)
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        from repro.fastpath import ENGINES

        if self.engine not in ENGINES:
            raise SpecError(
                f"unknown engine {self.engine!r}; one of {ENGINES}")
        if self.jobs is not None and (
                not isinstance(self.jobs, int) or self.jobs < 1):
            raise SpecError("jobs must be a positive integer or null")
        if self.stream and self.engine != "fast":
            raise SpecError(
                "the streaming pipeline is built on the fast kernels; "
                "engine must be 'fast' when stream is set")
        if self.chunk_size is not None and (
                not isinstance(self.chunk_size, int) or self.chunk_size < 1):
            raise SpecError("chunk_size must be a positive integer or null")

    @classmethod
    def from_dict(cls, data: Any) -> "EngineSpec":
        return _construct(
            cls,
            _check_fields(_require_mapping(data, "engine"), cls, "engine"),
            "engine")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


# -- telemetry ---------------------------------------------------------------


@dataclass(frozen=True)
class TelemetrySpec:
    """What a run should measure, mirroring
    :class:`repro.telemetry.session.TelemetryConfig`.

    Telemetry only observes — disabled telemetry is zero-cost and
    enabled telemetry is bit-identical (both enforced by tests) — so no
    field participates in :meth:`RunSpec.content_key`.
    """

    enabled: bool = False
    interval: int = 1000
    timeline: bool = True
    events: bool = False
    trace_path: str | None = None
    chrome_path: str | None = None
    sample_rate: float = 1.0
    seed: int = 0
    event_limit: int | None = None
    #: cap timeline storage with the hierarchical rollup recorder
    #: (``None`` keeps the unbounded in-memory timeline)
    max_timeline_rows: int | None = None

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise SpecError("telemetry interval must be >= 1 cycle")
        if not (0.0 < self.sample_rate <= 1.0):
            raise SpecError("telemetry sample_rate must be in (0, 1]")
        if self.max_timeline_rows is not None and (
                not isinstance(self.max_timeline_rows, int)
                or isinstance(self.max_timeline_rows, bool)
                or self.max_timeline_rows < 2):
            raise SpecError("max_timeline_rows must be an integer >= 2 "
                            "or null")

    def to_config(self):
        """A :class:`TelemetryConfig` when enabled, else ``None``."""
        if not self.enabled:
            return None
        from repro.telemetry.session import TelemetryConfig

        return TelemetryConfig(
            interval=self.interval,
            timeline=self.timeline,
            events=self.events or bool(self.trace_path or self.chrome_path),
            trace_path=self.trace_path,
            chrome_path=self.chrome_path,
            sample_rate=self.sample_rate,
            seed=self.seed,
            event_limit=self.event_limit,
            max_timeline_rows=self.max_timeline_rows,
        )

    @classmethod
    def from_dict(cls, data: Any) -> "TelemetrySpec":
        return _construct(
            cls,
            _check_fields(
                _require_mapping(data, "telemetry"), cls, "telemetry"),
            "telemetry")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


# -- observability -----------------------------------------------------------


@dataclass(frozen=True)
class ObsSpec:
    """Wall-clock span collection knobs, mirroring :mod:`repro.obs`.

    Spans time the host machine, never the simulated one, and the
    collection sites never touch simulation state — obs off is
    zero-overhead and obs on is bit-identical (both enforced by the
    equivalence suite) — so no field participates in
    :meth:`RunSpec.content_key`.
    """

    enabled: bool = False
    #: write drained spans as JSONL here after the run
    trace_path: str | None = None
    #: write drained spans as a Chrome ``trace_event`` document here
    chrome_path: str | None = None

    @classmethod
    def from_dict(cls, data: Any) -> "ObsSpec":
        return _construct(
            cls,
            _check_fields(_require_mapping(data, "obs"), cls, "obs"),
            "obs")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


# -- the run spec ------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One fully-described run: machine + workload + engine + telemetry."""

    workload: WorkloadSpec
    machine: MachineSpec = field(default_factory=MachineSpec)
    engine: EngineSpec = field(default_factory=EngineSpec)
    telemetry: TelemetrySpec = field(default_factory=TelemetrySpec)
    obs: ObsSpec = field(default_factory=ObsSpec)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "spec_schema": SPEC_SCHEMA,
            "machine": self.machine.to_dict(),
            "workload": self.workload.to_dict(),
            "engine": self.engine.to_dict(),
            "telemetry": self.telemetry.to_dict(),
            "obs": self.obs.to_dict(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Any) -> "RunSpec":
        out = _require_mapping(data, "spec")
        schema = out.pop("spec_schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise SpecError(
                f"unsupported spec_schema {schema!r} (this release reads "
                f"{SPEC_SCHEMA})"
            )
        unknown = set(out) - {
            "machine", "workload", "engine", "telemetry", "obs"}
        if unknown:
            raise SpecError(f"unknown spec section(s): {sorted(unknown)}")
        if "workload" not in out:
            raise SpecError("a spec requires a 'workload' section")
        return cls(
            workload=WorkloadSpec.from_dict(out["workload"]),
            machine=MachineSpec.from_dict(out.get("machine", {})),
            engine=EngineSpec.from_dict(out.get("engine", {})),
            telemetry=TelemetrySpec.from_dict(out.get("telemetry", {})),
            obs=ObsSpec.from_dict(out.get("obs", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    # -- keying ----------------------------------------------------------

    def canonical(self) -> dict:
        """Fully-resolved canonical form (workload seed resolved)."""
        out = self.to_dict()
        out["workload"] = self.workload.canonical()
        return out

    def result_recipe(self) -> dict:
        """What the simulation *result* is a pure function of.

        The machine, the resolved workload, and the ``instrument`` flag
        (it changes the stored payload).  Engine and telemetry are
        excluded — see the class docstrings for why that exclusion is
        sound, and the equivalence suite for the tests that keep it so.
        """
        return {
            "spec_schema": SPEC_SCHEMA,
            "machine": self.machine.canonical(),
            "workload": self.workload.canonical(),
            "instrument": self.engine.instrument,
        }

    def content_key(self) -> str:
        """The artifact-cache key of this run's simulation result.

        This single key is shared by in-process execution
        (``execute_spec``), the parallel runner, and the evaluation
        service — one spec, one key, wherever it is evaluated.
        """
        from repro.runner.artifacts import artifact_key

        return artifact_key("result", self.result_recipe())


# -- sweeps ------------------------------------------------------------------


def _set_dotted(spec: RunSpec, path: str, value: Any) -> RunSpec:
    """Replace a dotted-path field, e.g. ``machine.window_size``."""
    parts = path.split(".")
    if len(parts) < 2 or parts[0] not in (
            "machine", "workload", "engine", "telemetry", "obs"):
        raise SpecError(
            f"sweep axis {path!r} must start with a spec section "
            "(machine/workload/engine/telemetry/obs)"
        )
    # walk to the owner of the leaf field, then rebuild outward
    objs = [spec]
    for name in parts[:-1]:
        obj = objs[-1]
        if not hasattr(obj, name):
            raise SpecError(f"sweep axis {path!r}: no field {name!r}")
        objs.append(getattr(obj, name))
    leaf = parts[-1]
    if not dataclasses.is_dataclass(objs[-1]) or not hasattr(objs[-1], leaf):
        raise SpecError(f"sweep axis {path!r}: no field {leaf!r}")
    try:
        rebuilt = replace(objs[-1], **{leaf: value})
        for obj, name in zip(reversed(objs[:-1]), reversed(parts[:-1])):
            rebuilt = replace(obj, **{name: rebuilt})
    except (TypeError, ValueError) as exc:
        if isinstance(exc, SpecError):
            raise
        raise SpecError(f"sweep axis {path!r}={value!r}: {exc}") from exc
    return rebuilt


@dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter grid over a base :class:`RunSpec`.

    ``benchmarks`` (outermost axis) swaps the workload benchmark;
    ``axes`` maps dotted field paths (``"machine.window_size"``) to the
    values to sweep.  :meth:`expand` yields the full cross product in
    deterministic order: benchmarks first, then axes in insertion
    order, each axis's values in the given order.
    """

    base: RunSpec
    benchmarks: tuple = ()
    axes: Mapping[str, tuple] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "benchmarks", tuple(self.benchmarks))
        object.__setattr__(
            self, "axes", {k: tuple(v) for k, v in dict(self.axes).items()})
        for path, values in self.axes.items():
            if not values:
                raise SpecError(f"sweep axis {path!r} has no values")
            _set_dotted(self.base, path, values[0])  # validate the path

    def expand(self) -> list[RunSpec]:
        """The grid of :class:`RunSpec` points, in deterministic order."""
        points = [self.base]
        if self.benchmarks:
            points = [
                replace(p, workload=p.workload.with_benchmark(b))
                for b in self.benchmarks
                for p in points
            ]
        for path, values in self.axes.items():
            points = [
                _set_dotted(p, path, v) for p in points for v in values
            ]
        return points

    def to_dict(self) -> dict:
        return {
            "base": self.base.to_dict(),
            "benchmarks": list(self.benchmarks),
            "axes": {k: list(v) for k, v in self.axes.items()},
        }

    @classmethod
    def from_dict(cls, data: Any) -> "SweepSpec":
        out = _check_fields(_require_mapping(data, "sweep"), cls, "sweep")
        if "base" not in out:
            raise SpecError("a sweep requires a 'base' spec")
        out["base"] = RunSpec.from_dict(out["base"])
        return _construct(cls, out, "sweep")
