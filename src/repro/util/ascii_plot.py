"""Terminal plotting for curves and bars.

The paper is full of small line plots (IW curves, transients, ramps) and
bar charts (penalties, CPI stacks).  These renderers keep the repository
dependency-free while letting the CLI and examples show the shapes, not
just the numbers.
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: glyphs assigned to successive series of a line plot
_SERIES_GLYPHS = "*o+x#@%&"


def line_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more (xs, ys) series on a shared-axis ASCII canvas.

    Args:
        series: label -> (xs, ys); series may have different x grids.
        width/height: canvas size in characters (excluding axes).
        title / x_label / y_label: optional annotations.

    Returns:
        The rendered multi-line string.
    """
    if not series:
        raise ValueError("nothing to plot")
    for label, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {label!r} has mismatched x/y")
        if not xs:
            raise ValueError(f"series {label!r} is empty")
    all_x = [x for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, (label, (xs, ys)) in enumerate(series.items()):
        glyph = _SERIES_GLYPHS[idx % len(_SERIES_GLYPHS)]
        for x, y in zip(xs, ys):
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((y - y_lo) / y_span * (height - 1))
            canvas[height - 1 - row][col] = glyph

    lines: list[str] = []
    if title:
        lines.append(title)
    top = f"{y_hi:.2f}"
    bottom = f"{y_lo:.2f}"
    margin = max(len(top), len(bottom))
    for i, row in enumerate(canvas):
        if i == 0:
            prefix = top.rjust(margin)
        elif i == height - 1:
            prefix = bottom.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * margin + " +" + "-" * width)
    x_axis = f"{x_lo:.0f}".ljust(width - 8) + f"{x_hi:.0f}".rjust(8)
    lines.append(" " * (margin + 2) + x_axis)
    if x_label or y_label:
        lines.append(" " * (margin + 2) + x_label
                     + (f"   (y: {y_label})" if y_label else ""))
    legend = "   ".join(
        f"{_SERIES_GLYPHS[i % len(_SERIES_GLYPHS)]} {label}"
        for i, label in enumerate(series)
    )
    lines.append("  " + legend)
    return "\n".join(lines)


#: glyph ramp for sparklines, dimmest to brightest
_SPARK_GLYPHS = " .:-=+*#%@"


def sparkline(
    values: Sequence[float], width: int | None = None
) -> str:
    """Render ``values`` as a one-line ASCII intensity strip.

    Values are scaled to the series peak; when ``width`` is smaller than
    the series, consecutive values are averaged into one cell.  An empty
    or all-zero series renders as spaces.
    """
    values = list(values)
    if not values:
        return ""
    if width is not None and width < 1:
        raise ValueError("width must be >= 1")
    if width is not None and len(values) > width:
        merged = []
        for cell in range(width):
            lo = cell * len(values) // width
            hi = max(lo + 1, (cell + 1) * len(values) // width)
            chunk = values[lo:hi]
            merged.append(sum(chunk) / len(chunk))
        values = merged
    peak = max(values)
    if peak <= 0:
        return " " * len(values)
    top = len(_SPARK_GLYPHS) - 1
    return "".join(
        _SPARK_GLYPHS[min(top, round(v / peak * top))] if v > 0 else " "
        for v in values
    )


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    title: str = "",
    fmt: str = "{:.3f}",
) -> str:
    """Render a horizontal bar chart."""
    if len(labels) != len(values):
        raise ValueError("labels and values differ in length")
    if not labels:
        raise ValueError("nothing to plot")
    peak = max(values)
    if peak <= 0:
        peak = 1.0
    name_w = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * round(value / peak * width)
        lines.append(
            f"{label.ljust(name_w)}  {fmt.format(value).rjust(8)} {bar}"
        )
    return "\n".join(lines)
