"""Small shared utilities (terminal plotting)."""

from repro.util.ascii_plot import bar_chart, line_plot

__all__ = ["bar_chart", "line_plot"]
