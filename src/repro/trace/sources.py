"""Pluggable trace sources: where a workload's instructions come from.

Historically every layer of the system assumed "workload = one of the 12
synthetic SPECint-like profiles" — :class:`repro.spec.WorkloadSpec`
validated its benchmark against ``BENCHMARK_ORDER`` inline.  This module
turns that hard-coded enum into a small registry of :class:`TraceSource`
implementations, each owning one *scheme* of the source-tagged benchmark
grammar:

``<name>`` or ``synthetic:<name>``
    A synthetic profile trace.  The bare spelling is canonical — the
    ``synthetic:`` prefix normalizes to it at spec construction, so the
    canonical workload form (and every pinned content key) is
    byte-for-byte what it was before this layer existed.

``ingest:<key>`` or ``ingest:<path>``
    A foreign trace previously normalized into the content-addressed
    chunk store by :mod:`repro.ingest`.  The canonical spelling carries
    the 64-hex ingest content key; the path spelling is a construction-
    time convenience that ingests (or re-finds) the file and normalizes
    to the key, so both spellings of the same bytes share one cache
    entry, one service coalescing key and one fleet shard.

Validation lives in the sources (:meth:`TraceSource.normalize`), seed
resolution in :meth:`TraceSource.default_seed`, and chunk delivery
dispatches per scheme inside :func:`repro.runner.artifacts` — the
streaming engines, artifact cache, coalescing service and fleet routing
never look at the scheme at all.
"""

from __future__ import annotations

import string
from typing import Iterator

from repro.spec.specs import SpecError

__all__ = [
    "SyntheticSource",
    "IngestSource",
    "TraceSource",
    "get_source",
    "is_content_key",
    "iter_sources",
    "parse_benchmark",
    "register_source",
    "workload_scheme",
]

_HEX_DIGITS = frozenset(string.hexdigits.lower())


def is_content_key(ref: str) -> bool:
    """Whether ``ref`` is a 64-hex artifact content key."""
    return len(ref) == 64 and set(ref) <= _HEX_DIGITS


#: backwards-compatible alias for early adopters of the private name
_is_content_key = is_content_key


class TraceSource:
    """One scheme of the source-tagged workload grammar.

    Subclasses own validation/normalization of their references and the
    default RNG seed.  Chunk delivery stays in
    :mod:`repro.runner.artifacts`, which dispatches on the scheme — a
    source never needs to know about the cache layout.
    """

    #: the scheme tag this source answers for (``"synthetic"``, ...)
    scheme: str = ""

    def normalize(self, ref: str, length: int,
                  seed: int | None) -> tuple[str, int]:
        """Validate ``ref`` and return the canonical ``(benchmark,
        length)`` pair for the workload.  Raises :class:`SpecError` when
        the reference (or the seed, for sources that reject seeds) is
        invalid."""
        raise NotImplementedError

    def default_seed(self, ref: str) -> int:
        """The resolved seed when the workload leaves ``seed=None``."""
        raise NotImplementedError


class SyntheticSource(TraceSource):
    """The 12 synthetic SPECint-like profile traces (the default)."""

    scheme = "synthetic"

    def normalize(self, ref: str, length: int,
                  seed: int | None) -> tuple[str, int]:
        from repro.trace.profiles import BENCHMARK_ORDER

        if ref not in BENCHMARK_ORDER:
            raise SpecError(
                f"unknown benchmark {ref!r}; one of "
                + ", ".join(BENCHMARK_ORDER)
            )
        # the canonical spelling is the bare profile name: byte-for-byte
        # what WorkloadSpec.canonical() produced before sources existed
        return ref, length

    def default_seed(self, ref: str) -> int:
        from repro.trace.profiles import get_profile

        return get_profile(ref).seed


class IngestSource(TraceSource):
    """Foreign traces normalized into the chunk store by ``repro.ingest``.

    References are either the 64-hex ingest content key (canonical) or a
    filesystem path, which is ingested — idempotently, keyed by content —
    at spec-construction time and replaced by its key.  Ingested traces
    carry no RNG: the seed must stay ``None`` and resolves to 0 in the
    canonical form.
    """

    scheme = "ingest"

    def normalize(self, ref: str, length: int,
                  seed: int | None) -> tuple[str, int]:
        # 0 is what resolved_seed() answers for ingest workloads, so the
        # canonical form round-trips; anything else implies an RNG that
        # does not exist here
        if seed is not None and seed != 0:
            raise SpecError(
                "ingest workloads take no RNG seed; leave seed null")
        if not ref:
            raise SpecError(
                "ingest workload needs a content key or file path, "
                "e.g. ingest:<64-hex-key> or ingest:trace.csv")
        if not is_content_key(ref):
            # path spelling: ingest (or re-find) the file and normalize
            # to its content key so both spellings share one identity
            from repro import ingest as _ingest

            try:
                ref = _ingest.ingest_file(ref).key
            except _ingest.IngestError as exc:
                raise SpecError(f"cannot ingest {ref!r}: {exc}") from exc
        # the requested length is kept verbatim: canonicalization must
        # be a pure function of the reference, identical on machines
        # with and without the trace data cached locally.  Serving
        # clamps to the record count (repro.ingest.ingest_chunk_stream)
        return f"{self.scheme}:{ref}", length

    def default_seed(self, ref: str) -> int:
        return 0


_SOURCES: dict[str, TraceSource] = {}


def register_source(source: TraceSource) -> TraceSource:
    """Add a :class:`TraceSource` to the registry (keyed by scheme)."""
    if not source.scheme:
        raise ValueError("a trace source needs a non-empty scheme")
    _SOURCES[source.scheme] = source
    return source


def get_source(scheme: str) -> TraceSource:
    """The registered source for ``scheme`` (:class:`SpecError` if none)."""
    try:
        return _SOURCES[scheme]
    except KeyError:
        raise SpecError(
            f"unknown trace source {scheme!r}; one of "
            + ", ".join(sorted(_SOURCES))
        ) from None


def iter_sources() -> Iterator[TraceSource]:
    """All registered sources, in registration order."""
    return iter(_SOURCES.values())


register_source(SyntheticSource())
register_source(IngestSource())


def parse_benchmark(benchmark: str) -> tuple[str, str]:
    """Split a benchmark string into ``(scheme, reference)``.

    Bare names (no recognized ``scheme:`` prefix) are synthetic — the
    pre-registry spelling keeps working everywhere, and an unknown bare
    name still fails with the familiar "unknown benchmark" message.
    """
    scheme, sep, ref = benchmark.partition(":")
    if sep and scheme in _SOURCES:
        return scheme, ref
    return "synthetic", benchmark


def workload_scheme(benchmark: str) -> str:
    """The scheme a (possibly un-normalized) benchmark string names."""
    return parse_benchmark(benchmark)[0]
