"""Chunked trace streams and the mmap-able chunk container format.

A long trace is delivered as a sequence of fixed-size *chunks* — each a
small :class:`~repro.trace.trace.Trace` holding ``chunk_size``
consecutive instructions in columnar form.  Streaming consumers (the
functional frontend fast pass, the detailed engine's table builder, the
bench harness) iterate chunks and never hold more than O(chunk) live
data, which is what makes 10^7-instruction workloads routine.

Two layers live here:

:class:`TraceChunkStream`
    A re-iterable stream of chunks with metadata (name, total length,
    chunk size) and a :meth:`~TraceChunkStream.materialize` escape hatch
    that concatenates into a plain in-memory :class:`Trace`.

The ``.rtc`` chunk container
    One chunk serialized as a single flat file: a 4-byte magic, a JSON
    header describing the columns, then the raw column payloads at
    64-byte-aligned offsets.  The format is designed for ``mmap``:
    :func:`read_chunk` maps the file once and returns a :class:`Trace`
    whose columns are zero-copy views into the mapping.  Chunks are
    *content addressed* — :func:`chunk_content_key` hashes the column
    bytes — so identical chunks produced under different recipes (same
    seed at two lengths, shared warmup prefixes) deduplicate to one
    payload file in the artifact cache.

Corruption tolerance: every structural defect a torn write can produce
(short file, bad magic, mangled header, truncated payload) raises
:class:`ChunkCorruptError` from :func:`read_chunk`; cache readers treat
that as a miss and regenerate.  :func:`verify_chunk` additionally
re-hashes the payload against the name the file is stored under.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import struct
import tempfile
from pathlib import Path
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.trace.trace import _COLUMNS, Trace

__all__ = [
    "CHUNK_MAGIC",
    "ChunkCorruptError",
    "TraceChunkStream",
    "chunk_content_key",
    "chunk_layout",
    "read_chunk",
    "rechunk_stream",
    "verify_chunk",
    "write_chunk",
]

#: magic prefix of the chunk container format ("Repro Trace Chunk v1")
CHUNK_MAGIC = b"RTC1"

#: payload alignment inside the container, so mmap'd columns are
#: cache-line aligned
_ALIGN = 64

_HDR_LEN = struct.Struct("<I")


class ChunkCorruptError(Exception):
    """A chunk container failed structural or content validation."""


def chunk_content_key(chunk: Trace) -> str:
    """Content hash of a chunk's column bytes (dtype-tagged sha256).

    The trace *name* is deliberately excluded: two byte-identical chunks
    generated under different labels share one payload file.
    """
    h = hashlib.sha256(b"repro-trace-chunk-v1")
    h.update(str(len(chunk)).encode())
    for col, dtype in _COLUMNS:
        arr = np.ascontiguousarray(getattr(chunk, col))
        h.update(col.encode())
        h.update(np.dtype(dtype).str.encode())
        h.update(arr)
    return h.hexdigest()


def chunk_layout(chunk: Trace) -> dict:
    """The container header for ``chunk`` (also useful for inspection)."""
    columns = []
    offset = 0
    for col, dtype in _COLUMNS:
        nbytes = len(chunk) * np.dtype(dtype).itemsize
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        columns.append(
            {"name": col, "dtype": np.dtype(dtype).str,
             "offset": offset, "nbytes": nbytes}
        )
        offset += nbytes
    return {"n": len(chunk), "columns": columns, "payload_bytes": offset}


def write_chunk(path: str | Path, chunk: Trace) -> str:
    """Serialize ``chunk`` to ``path`` atomically; returns its content key.

    The write goes to a temporary sibling and is published with
    ``os.replace``, so readers never observe a torn container (a torn
    *temporary* is left behind only on a crash and never has the final
    name).
    """
    path = Path(path)
    layout = chunk_layout(chunk)
    header = json.dumps(layout, separators=(",", ":")).encode()
    buf = io.BytesIO()
    buf.write(CHUNK_MAGIC)
    buf.write(_HDR_LEN.pack(len(header)))
    buf.write(header)
    data_start = (buf.tell() + _ALIGN - 1) // _ALIGN * _ALIGN
    buf.write(b"\0" * (data_start - buf.tell()))
    for spec in layout["columns"]:
        pos = data_start + spec["offset"]
        buf.write(b"\0" * (pos - buf.tell()))
        arr = np.ascontiguousarray(getattr(chunk, spec["name"]))
        buf.write(arr.tobytes())
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".chunk-",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(buf.getvalue())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return chunk_content_key(chunk)


def _parse_container(raw, path: Path) -> tuple[dict, int]:
    if len(raw) < len(CHUNK_MAGIC) + _HDR_LEN.size:
        raise ChunkCorruptError(f"{path}: truncated container")
    if bytes(raw[: len(CHUNK_MAGIC)]) != CHUNK_MAGIC:
        raise ChunkCorruptError(f"{path}: bad magic")
    (hdr_len,) = _HDR_LEN.unpack(
        bytes(raw[len(CHUNK_MAGIC): len(CHUNK_MAGIC) + _HDR_LEN.size])
    )
    hdr_start = len(CHUNK_MAGIC) + _HDR_LEN.size
    if hdr_start + hdr_len > len(raw):
        raise ChunkCorruptError(f"{path}: truncated header")
    try:
        layout = json.loads(bytes(raw[hdr_start: hdr_start + hdr_len]))
        n = int(layout["n"])
        columns = layout["columns"]
    except (ValueError, KeyError, TypeError) as exc:
        raise ChunkCorruptError(f"{path}: unreadable header ({exc})") from exc
    data_start = (hdr_start + hdr_len + _ALIGN - 1) // _ALIGN * _ALIGN
    names = {spec.get("name") for spec in columns}
    if names != {col for col, _ in _COLUMNS}:
        raise ChunkCorruptError(f"{path}: column set mismatch")
    for spec in columns:
        dtype = np.dtype(spec["dtype"])
        if spec["nbytes"] != n * dtype.itemsize:
            raise ChunkCorruptError(f"{path}: column size mismatch")
        if data_start + spec["offset"] + spec["nbytes"] > len(raw):
            raise ChunkCorruptError(f"{path}: truncated payload")
    return layout, data_start


def read_chunk(path: str | Path, name: str = "trace",
               mmap: bool = True) -> Trace:
    """Load a chunk container; columns are zero-copy views of an mmap.

    With ``mmap=False`` the file is read into memory instead (useful for
    short-lived chunks on filesystems where mappings are expensive).
    Raises :class:`ChunkCorruptError` on any structural defect.
    """
    path = Path(path)
    try:
        if mmap:
            raw = np.memmap(path, dtype=np.uint8, mode="r")
        else:
            raw = np.fromfile(path, dtype=np.uint8)
    except (OSError, ValueError) as exc:
        raise ChunkCorruptError(f"{path}: unreadable ({exc})") from exc
    layout, data_start = _parse_container(raw, path)
    cols = {}
    for spec in layout["columns"]:
        dtype = np.dtype(spec["dtype"])
        start = data_start + spec["offset"]
        cols[spec["name"]] = raw[start: start + spec["nbytes"]].view(dtype)
    return Trace(name=name, **cols)


def verify_chunk(path: str | Path, expected_key: str) -> bool:
    """Whether the container at ``path`` hashes to ``expected_key``."""
    try:
        chunk = read_chunk(path, mmap=False)
    except ChunkCorruptError:
        return False
    return chunk_content_key(chunk) == expected_key


def rechunk_stream(
    chunks: Iterable[Trace],
    *,
    length: int | None = None,
    chunk_size: int,
    name: str = "trace",
) -> Iterator[Trace]:
    """Re-slice a chunk iterator to ``chunk_size`` granularity.

    Yields chunks of exactly ``chunk_size`` instructions (the last may
    be shorter), truncating the stream after ``length`` instructions
    when given.  Slices are zero-copy views wherever a stored chunk
    already aligns; only boundary-straddling chunks concatenate.  The
    ingest layer stores foreign traces at one fixed granularity and
    serves any requested ``chunk_size``/``length`` through this.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    pending: list[Trace] = []
    buffered = 0
    remaining = length
    for chunk in chunks:
        if remaining is not None:
            if remaining <= 0:
                break
            if len(chunk) > remaining:
                chunk = chunk[:remaining]
            remaining -= len(chunk)
        if len(chunk) == 0:
            continue
        pending.append(chunk)
        buffered += len(chunk)
        while buffered >= chunk_size:
            take: list[Trace] = []
            need = chunk_size
            while need:
                head = pending[0]
                if len(head) <= need:
                    take.append(head)
                    need -= len(head)
                    pending.pop(0)
                else:
                    take.append(head[:need])
                    pending[0] = head[need:]
                    need = 0
            buffered -= chunk_size
            if len(take) == 1:
                out = take[0]
                yield out if out.name == name else _renamed(out, name)
            else:
                from repro.trace.vectorgen import concat_traces

                yield concat_traces(take, name=name)
    if pending:
        if len(pending) == 1:
            out = pending[0]
            yield out if out.name == name else _renamed(out, name)
        else:
            from repro.trace.vectorgen import concat_traces

            yield concat_traces(pending, name=name)


def _renamed(chunk: Trace, name: str) -> Trace:
    """The same column views under another trace name."""
    return Trace(
        name=name, **{col: getattr(chunk, col) for col, _ in _COLUMNS}
    )


class TraceChunkStream:
    """A re-iterable stream of trace chunks with known metadata.

    ``source`` is a zero-argument callable returning a fresh chunk
    iterator — streams are re-iterable so one stream object can feed
    multiple passes (e.g. the functional frontend then the detailed
    engine) without materializing anything.
    """

    def __init__(self, source: Callable[[], Iterable[Trace]], *,
                 name: str, length: int, chunk_size: int) -> None:
        self._source = source
        self.name = name
        self.length = int(length)
        self.chunk_size = int(chunk_size)

    def __len__(self) -> int:
        """Total instruction count (not the number of chunks)."""
        return self.length

    @property
    def num_chunks(self) -> int:
        return -(-self.length // self.chunk_size) if self.length else 0

    def __iter__(self) -> Iterator[Trace]:
        emitted = 0
        for chunk in self._source():
            emitted += len(chunk)
            if emitted > self.length:
                raise ChunkCorruptError(
                    f"stream {self.name!r} produced {emitted} > "
                    f"{self.length} instructions"
                )
            yield chunk
        if emitted != self.length:
            raise ChunkCorruptError(
                f"stream {self.name!r} produced {emitted} != "
                f"{self.length} instructions"
            )

    def materialize(self) -> Trace:
        """Concatenate the stream into one in-memory :class:`Trace`."""
        from repro.trace.vectorgen import concat_traces

        parts = list(self)
        if len(parts) == 1:
            return parts[0]
        return concat_traces(parts, name=self.name)

    def __repr__(self) -> str:
        return (f"TraceChunkStream(name={self.name!r}, length={self.length}, "
                f"chunk_size={self.chunk_size})")
