"""Synthetic benchmark profiles standing in for SPECint2000 traces.

The paper's experiments run over the twelve SPECint2000 benchmarks.  We
have no SPEC binaries or traces, so each benchmark is replaced by a
*profile*: a small set of generation knobs that pin down exactly the
statistical properties the first-order model consumes —

* the register dependence-distance distribution, which determines the IW
  power-law parameters (alpha, beta) of paper Table 1 / Figure 4;
* the instruction mix, which determines the mean functional-unit latency
  L (Table 1, last column);
* control-flow predictability, which determines the gShare misprediction
  rate;
* code footprint and reuse, which determine I-cache miss rates
  (Figure 11's benchmark selection);
* data footprints and access mixtures, which determine short/long
  data-cache miss rates and the clustering of long misses that drives the
  overlap model of Eq. 8 (mcf and twolf are the long-miss-dominated
  outliers, Figure 16).

The numeric values are calibrated so the three benchmarks the paper
tabulates (gzip, vortex, vpr) land in the right power-law bands
(beta ~ 0.5 / 0.7 / 0.3, mean latency ~ 1.5 / 1.6 / 2.2) and the rest
spread between the extremes, mirroring the qualitative structure of the
paper's figures rather than the exact SPEC numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.isa.opclass import OpClass

#: kilobyte/megabyte helpers for footprint constants
KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generation knobs for one synthetic benchmark.

    Attributes fall into four groups mirroring the model inputs; see the
    module docstring.  All fractions are probabilities in [0, 1].
    """

    name: str

    # --- instruction mix (remaining fraction is IALU) ------------------
    frac_load: float = 0.24
    frac_store: float = 0.10
    frac_branch: float = 0.16
    frac_jump: float = 0.02
    frac_imul: float = 0.01
    frac_idiv: float = 0.0
    frac_falu: float = 0.0
    frac_fmul: float = 0.0
    frac_fdiv: float = 0.0

    # --- register dependences ------------------------------------------
    #: mean of the geometric distribution over producer distance
    dep_mean_distance: float = 6.0
    #: probability that a source operand is architecturally live-in
    #: (always ready; long-distance dependence)
    frac_live_in: float = 0.15
    #: probability that an instruction has a second source operand
    frac_two_sources: float = 0.45

    # --- control flow ----------------------------------------------------
    #: number of static basic blocks (code footprint ~ blocks * size * 4B)
    num_static_blocks: int = 160
    #: mean instructions per basic block
    mean_block_size: float = 6.0
    #: fraction of static conditional branches that are essentially
    #: unpredictable (data-dependent, ~50/50)
    frac_hard_branches: float = 0.08
    #: fraction of static conditional branches that are loop back-edges
    #: (mispredicted only on loop exit)
    frac_loop_branches: float = 0.45
    #: taken-probability of the remaining biased branches
    biased_taken_prob: float = 0.85
    #: mean loop trip count for loop back-edges
    mean_trip_count: float = 12.0

    # --- memory behaviour -------------------------------------------------
    #: address-region mixture for loads/stores (normalised internally)
    stack_frac: float = 0.45
    stream_frac: float = 0.35
    heap_frac: float = 0.20
    #: footprints
    stack_bytes: int = 2 * KB
    stream_bytes: int = 64 * KB   # per stream; > L1 -> short misses
    num_streams: int = 4
    stream_stride: int = 8
    heap_bytes: int = 256 * KB    # > L2 -> long misses
    #: probability a heap access re-touches a recently used line
    heap_locality: float = 0.6

    #: default dynamic trace length used by experiments
    default_length: int = 40_000
    #: per-benchmark RNG seed so traces are reproducible
    seed: int = 1

    def __post_init__(self) -> None:
        mix = self.mix_fractions()
        total = sum(mix.values())
        if not 0.0 < total <= 1.0 + 1e-9:
            raise ValueError(f"{self.name}: instruction mix sums to {total:.3f} > 1")
        region = self.stack_frac + self.stream_frac + self.heap_frac
        if region <= 0:
            raise ValueError(f"{self.name}: memory region mixture is empty")
        if self.dep_mean_distance < 1.0:
            raise ValueError(f"{self.name}: dep_mean_distance must be >= 1")

    def mix_fractions(self) -> dict[OpClass, float]:
        """Non-IALU mix fractions as an opclass map."""
        return {
            OpClass.LOAD: self.frac_load,
            OpClass.STORE: self.frac_store,
            OpClass.BRANCH: self.frac_branch,
            OpClass.JUMP: self.frac_jump,
            OpClass.IMUL: self.frac_imul,
            OpClass.IDIV: self.frac_idiv,
            OpClass.FALU: self.frac_falu,
            OpClass.FMUL: self.frac_fmul,
            OpClass.FDIV: self.frac_fdiv,
        }

    def full_mix(self) -> dict[OpClass, float]:
        """Complete mix including the implicit IALU remainder."""
        mix = {c: f for c, f in self.mix_fractions().items() if f > 0}
        mix[OpClass.IALU] = max(0.0, 1.0 - sum(mix.values()))
        return mix

    @property
    def code_bytes(self) -> int:
        """Approximate static code footprint in bytes (4-byte instructions)."""
        return int(self.num_static_blocks * self.mean_block_size * 4)


def _p(name: str, **kw) -> BenchmarkProfile:
    return BenchmarkProfile(name=name, **kw)


#: The twelve SPECint2000 stand-ins, keyed by the names the paper uses.
#:
#: Calibration notes (paper anchor -> knob):
#:   gzip    beta~0.5, L~1.5, moderate mispredicts         -> mid distances
#:   vortex  beta~0.7, L~1.6, big code (I$ misses, Fig 11) -> long distances
#:   vpr     beta~0.3, L~2.2 (high-latency mix), bursty bp  -> short distances,
#:           more IMUL/FALU
#:   mcf     long-miss dominated (70% of CPI, Fig 16)       -> huge heap, low
#:           locality
#:   twolf   long-miss heavy (60%) + high mispredicts       -> big heap + hard
#:           branches
#:   gcc     big code footprint, moderate everything
#:   gap     outlier: work available behind mispredicts and misses
#:           (paper 4.1/4.3) -> long distances + live-ins
SPECINT2000: Mapping[str, BenchmarkProfile] = {
    p.name: p
    for p in (
        _p(
            "bzip", seed=11, dep_mean_distance=7.0, frac_live_in=0.18,
            num_static_blocks=90, frac_hard_branches=0.10,
            stream_frac=0.55, heap_frac=0.10, heap_bytes=3 * MB,
            heap_locality=0.82, frac_load=0.26,
        ),
        _p(
            "crafty", seed=12, dep_mean_distance=9.0, frac_live_in=0.22,
            num_static_blocks=320, mean_block_size=7.0,
            mean_trip_count=16.0, frac_hard_branches=0.09, frac_imul=0.02,
            heap_bytes=3 * MB, heap_frac=0.10, heap_locality=0.84,
        ),
        _p(
            "eon", seed=13, dep_mean_distance=10.0, frac_live_in=0.24,
            num_static_blocks=340, mean_block_size=6.5,
            mean_trip_count=16.0, frac_hard_branches=0.04, frac_falu=0.06, frac_fmul=0.04,
            heap_bytes=3 * MB, heap_frac=0.08, heap_locality=0.86,
            frac_branch=0.11,
        ),
        _p(
            "gap", seed=14, dep_mean_distance=14.0, frac_live_in=0.30,
            num_static_blocks=300, mean_trip_count=14.0, frac_hard_branches=0.05,
            heap_bytes=3 * MB, heap_frac=0.12, heap_locality=0.84,
            frac_imul=0.03,
        ),
        _p(
            "gcc", seed=15, dep_mean_distance=7.5, frac_live_in=0.20,
            num_static_blocks=520, mean_block_size=5.5,
            mean_trip_count=14.0, frac_hard_branches=0.10, frac_branch=0.19,
            heap_bytes=3 * MB, heap_frac=0.12, heap_locality=0.82,
        ),
        _p(
            "gzip", seed=16, dep_mean_distance=6.0, frac_live_in=0.15,
            num_static_blocks=80, frac_hard_branches=0.13,
            stream_frac=0.50, heap_bytes=3 * MB, heap_frac=0.10,
            heap_locality=0.84,
        ),
        _p(
            "mcf", seed=17, dep_mean_distance=4.5, frac_live_in=0.12,
            num_static_blocks=60, frac_hard_branches=0.12,
            frac_load=0.30, heap_frac=0.40, stream_frac=0.15,
            heap_bytes=16 * MB, heap_locality=0.55,
        ),
        _p(
            "parser", seed=18, dep_mean_distance=6.5, frac_live_in=0.16,
            num_static_blocks=280, mean_trip_count=14.0, frac_hard_branches=0.11,
            heap_bytes=3 * MB, heap_frac=0.12, heap_locality=0.84,
            frac_branch=0.19,
        ),
        _p(
            "perl", seed=19, dep_mean_distance=8.0, frac_live_in=0.20,
            num_static_blocks=300, mean_block_size=6.0,
            mean_trip_count=18.0, frac_hard_branches=0.07, frac_jump=0.05,
            heap_bytes=3 * MB, heap_frac=0.10, heap_locality=0.84,
        ),
        _p(
            "twolf", seed=20, dep_mean_distance=5.0, frac_live_in=0.12,
            num_static_blocks=260, mean_trip_count=14.0, frac_hard_branches=0.14,
            frac_imul=0.03, frac_falu=0.03,
            heap_bytes=8 * MB, heap_frac=0.28, heap_locality=0.45,
            stream_frac=0.10,
        ),
        _p(
            "vortex", seed=21, dep_mean_distance=16.0, frac_live_in=0.32,
            num_static_blocks=380, mean_block_size=6.5,
            mean_trip_count=16.0, frac_hard_branches=0.03, frac_branch=0.14,
            heap_bytes=3 * MB, heap_frac=0.12, heap_locality=0.84,
        ),
        _p(
            "vpr", seed=22, dep_mean_distance=2.6, frac_live_in=0.08,
            frac_two_sources=0.60, num_static_blocks=140,
            frac_hard_branches=0.16, frac_imul=0.05, frac_falu=0.10,
            frac_fmul=0.05, heap_bytes=2 * MB, heap_frac=0.22,
            heap_locality=0.45,
        ),
    )
}

#: benchmark order used by every per-benchmark figure, matching the paper
BENCHMARK_ORDER = (
    "bzip", "crafty", "eon", "gap", "gcc", "gzip",
    "mcf", "parser", "perl", "twolf", "vortex", "vpr",
)


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a profile by benchmark name (paper spelling)."""
    try:
        return SPECINT2000[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(SPECINT2000)}"
        ) from None
