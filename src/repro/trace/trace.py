"""Columnar dynamic-instruction trace.

A :class:`Trace` stores one dynamic instruction stream as parallel NumPy
arrays.  All simulators in this repository (the functional miss-event
collector, the idealized IW simulator and the detailed cycle-level
simulator) consume this representation; the row-oriented
:class:`repro.isa.Instruction` view is generated on demand.

The most important derived product is :meth:`Trace.dependences`: the
register-renaming pass that converts source-register names into the trace
index of the producing instruction.  Downstream simulators never touch
register names — data-dependence questions become integer comparisons on
producer indices, which is both faster and closer to how the paper
reasons about dependences ("register-based data dependence properties",
§3).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.isa.instruction import NO_REG, Instruction
from repro.isa.latency import LatencyTable
from repro.isa.opclass import OpClass, writes_register

#: columns of a trace and their dtypes, in serialisation order
_COLUMNS = (
    ("pc", np.int64),
    ("opclass", np.int8),
    ("dst", np.int16),
    ("src1", np.int16),
    ("src2", np.int16),
    ("addr", np.int64),
    ("taken", np.bool_),
    ("target", np.int64),
)


@dataclass(frozen=True)
class Dependences:
    """Producer indices for each instruction's source operands.

    ``dep1[k]``/``dep2[k]`` hold the trace index of the instruction that
    produces the value consumed by instruction ``k``'s first/second source
    operand, or -1 when the operand is absent or architecturally live-in.
    """

    dep1: np.ndarray
    dep2: np.ndarray

    def __len__(self) -> int:
        return len(self.dep1)

    @cached_property
    def dep1_list(self) -> list[int]:
        """``dep1`` as a plain list — the representation the cycle-level
        simulators index per instruction (cached: the conversion shows up
        in profiles when a trace is simulated under many configs)."""
        return self.dep1.tolist()

    @cached_property
    def dep2_list(self) -> list[int]:
        return self.dep2.tolist()

    def distances(self) -> np.ndarray:
        """Dependence distances (consumer index minus producer index) for
        every present operand, flattened.  This is the raw statistic behind
        the IW power-law (paper §3)."""
        idx = np.arange(len(self.dep1))
        d1 = idx - self.dep1
        d2 = idx - self.dep2
        out = np.concatenate([d1[self.dep1 >= 0], d2[self.dep2 >= 0]])
        return out.astype(np.int64)


class Trace:
    """An immutable dynamic instruction stream in columnar form."""

    def __init__(
        self,
        pc: np.ndarray,
        opclass: np.ndarray,
        dst: np.ndarray,
        src1: np.ndarray,
        src2: np.ndarray,
        addr: np.ndarray,
        taken: np.ndarray,
        target: np.ndarray,
        name: str = "trace",
    ) -> None:
        arrays = {
            "pc": pc, "opclass": opclass, "dst": dst, "src1": src1,
            "src2": src2, "addr": addr, "taken": taken, "target": target,
        }
        n = len(pc)
        for col, dtype in _COLUMNS:
            arr = np.asarray(arrays[col], dtype=dtype)
            if len(arr) != n:
                raise ValueError(f"column {col!r} has length {len(arr)} != {n}")
            arr.setflags(write=False)
            setattr(self, col, arr)
        self.name = name
        self._deps: Dependences | None = None

    # -- construction --------------------------------------------------

    @classmethod
    def from_instructions(
        cls, instructions: Iterable[Instruction], name: str = "trace"
    ) -> "Trace":
        """Build a trace from row-oriented instruction records."""
        rows = list(instructions)
        return cls(
            pc=np.array([i.pc for i in rows], dtype=np.int64),
            opclass=np.array([int(i.opclass) for i in rows], dtype=np.int8),
            dst=np.array([i.dst for i in rows], dtype=np.int16),
            src1=np.array([i.src1 for i in rows], dtype=np.int16),
            src2=np.array([i.src2 for i in rows], dtype=np.int16),
            addr=np.array([i.addr for i in rows], dtype=np.int64),
            taken=np.array([i.taken for i in rows], dtype=np.bool_),
            target=np.array([i.target for i in rows], dtype=np.int64),
            name=name,
        )

    # -- container protocol ---------------------------------------------

    def __len__(self) -> int:
        return len(self.pc)

    def __iter__(self) -> Iterator[Instruction]:
        for k in range(len(self)):
            yield self[k]

    def __getitem__(self, key):
        if isinstance(key, slice):
            return Trace(
                self.pc[key], self.opclass[key], self.dst[key],
                self.src1[key], self.src2[key], self.addr[key],
                self.taken[key], self.target[key], name=self.name,
            )
        k = int(key)
        return Instruction(
            pc=int(self.pc[k]),
            opclass=OpClass(int(self.opclass[k])),
            dst=int(self.dst[k]),
            src1=int(self.src1[k]),
            src2=int(self.src2[k]),
            addr=int(self.addr[k]),
            taken=bool(self.taken[k]),
            target=int(self.target[k]),
        )

    def __repr__(self) -> str:
        return f"Trace(name={self.name!r}, n={len(self)})"

    # -- masks ----------------------------------------------------------

    def mask(self, *classes: OpClass) -> np.ndarray:
        """Boolean mask selecting instructions of the given classes."""
        out = np.zeros(len(self), dtype=bool)
        for c in classes:
            out |= self.opclass == int(c)
        return out

    @property
    def loads(self) -> np.ndarray:
        return self.mask(OpClass.LOAD)

    @property
    def stores(self) -> np.ndarray:
        return self.mask(OpClass.STORE)

    @property
    def branches(self) -> np.ndarray:
        return self.mask(OpClass.BRANCH)

    # -- derived products -------------------------------------------------

    def dependences(self) -> Dependences:
        """Run the register-renaming pass (cached).

        A single in-order sweep maps each source register name to the trace
        index of its most recent producer.  Loads/stores do not create
        memory dependences here; the paper's model (and its detailed
        reference simulator) track register dependences only.
        """
        if self._deps is None:
            self._deps = _rename(self.dst, self.src1, self.src2, self.opclass)
        return self._deps

    def latencies(self, table: LatencyTable) -> np.ndarray:
        """Per-instruction static latency column under ``table``."""
        return table.as_vector()[self.opclass.astype(np.int64)]

    def instruction_mix(self) -> dict[OpClass, float]:
        """Dynamic frequency of each opclass present in the trace."""
        counts = np.bincount(self.opclass.astype(np.int64), minlength=len(OpClass))
        n = len(self)
        return {OpClass(c): counts[c] / n for c in range(len(OpClass)) if counts[c]}

    # -- (de)serialisation ------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace as a compressed ``.npz`` archive."""
        np.savez_compressed(
            Path(path),
            name=np.array(self.name),
            **{col: getattr(self, col) for col, _ in _COLUMNS},
        )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        with np.load(Path(path)) as data:
            return cls(
                **{col: data[col] for col, _ in _COLUMNS},
                name=str(data["name"]),
            )


class StreamingRenamer:
    """Chunk-at-a-time register renaming with cross-chunk carry.

    Feeding the chunks of a stream through :meth:`rename_chunk` in order
    produces exactly the dependences :func:`_rename` computes on the
    concatenated trace: the producer map persists across chunk
    boundaries, so a source operand whose producer lives in an earlier
    chunk resolves to that producer's *global* trace index.  Peak memory
    is O(chunk) plus the register file.
    """

    def __init__(self) -> None:
        self._prod: list[int] = []
        self._writes = [
            writes_register(OpClass(c)) for c in range(len(OpClass))
        ]
        self._next = 0

    @property
    def position(self) -> int:
        """Global index of the next instruction to be renamed."""
        return self._next

    def rename_chunk(self, chunk: "Trace") -> Dependences:
        """Dependences of ``chunk`` (producer indices are global)."""
        n = len(chunk)
        base = self._next
        hi = 1 + max(
            int(chunk.dst.max(initial=NO_REG)),
            int(chunk.src1.max(initial=NO_REG)),
            int(chunk.src2.max(initial=NO_REG)),
        )
        prod = self._prod
        if hi > len(prod):
            prod.extend([-1] * (hi - len(prod)))
        d1 = [-1] * n
        d2 = [-1] * n
        dst_list = chunk.dst.tolist()
        src1_list = chunk.src1.tolist()
        src2_list = chunk.src2.tolist()
        op_list = chunk.opclass.tolist()
        writes = self._writes
        for k in range(n):
            s1 = src1_list[k]
            if s1 != NO_REG:
                d1[k] = prod[s1]
            s2 = src2_list[k]
            if s2 != NO_REG:
                d2[k] = prod[s2]
            d = dst_list[k]
            if d != NO_REG and writes[op_list[k]]:
                prod[d] = base + k
        self._next = base + n
        return Dependences(
            dep1=np.array(d1, dtype=np.int64),
            dep2=np.array(d2, dtype=np.int64),
        )


def _rename(
    dst: np.ndarray, src1: np.ndarray, src2: np.ndarray, opclass: np.ndarray
) -> Dependences:
    """Sequential renaming sweep; see :meth:`Trace.dependences`."""
    n = len(dst)
    num_regs = 1 + max(
        int(dst.max(initial=NO_REG)),
        int(src1.max(initial=NO_REG)),
        int(src2.max(initial=NO_REG)),
    )
    num_regs = max(num_regs, 1)
    producer = np.full(num_regs, -1, dtype=np.int64)
    dep1 = np.full(n, -1, dtype=np.int64)
    dep2 = np.full(n, -1, dtype=np.int64)
    writer_mask = np.array([writes_register(OpClass(c)) for c in range(len(OpClass))])
    dst_list = dst.tolist()
    src1_list = src1.tolist()
    src2_list = src2.tolist()
    op_list = opclass.tolist()
    prod = producer.tolist()
    d1 = dep1.tolist()
    d2 = dep2.tolist()
    writes = writer_mask.tolist()
    for k in range(n):
        s1 = src1_list[k]
        if s1 != NO_REG:
            d1[k] = prod[s1]
        s2 = src2_list[k]
        if s2 != NO_REG:
            d2[k] = prod[s2]
        d = dst_list[k]
        if d != NO_REG and writes[op_list[k]]:
            prod[d] = k
    return Dependences(
        dep1=np.array(d1, dtype=np.int64), dep2=np.array(d2, dtype=np.int64)
    )
