"""Exact replica of the numpy ``Generator`` draw stream over a raw PCG64 tape.

The chunked trace generator (:mod:`repro.trace.vectorgen`) must be
*byte-identical* to the original per-instruction generator
(:mod:`repro.trace.synthetic`), which interleaves scalar ``Generator``
calls — ``random()``, bounded ``integers()``, ``geometric()`` — in a
data-dependent order.  Vectorizing that consumer requires separating the
*bit source* from the *draw semantics*:

* the bit source is the raw PCG64 ``next_uint64`` sequence (the "tape"),
  obtainable at C speed from a cloned generator via full-range
  ``integers(0, 2**64, dtype=uint64)``;
* the draw semantics are re-implemented here, draw-for-draw compatible
  with numpy's C implementations (``distributions.c``):

  - ``random()``       -> ``(u64 >> 11) * 2**-53`` (one tape token)
  - ``integers(0, b)`` (b <= 2**32, the only form the trace generator
    uses) -> Lemire rejection sampling on *uint32 halves* of tape
    tokens, with the unconsumed high half cached in generator state
  - ``standard_exponential`` -> the 256-level ziggurat, whose tables are
    embedded below (extracted from the installed numpy binary so the
    float values are bit-exact)
  - ``geometric(p)``   -> inversion via the exponential ziggurat for
    p < 1/3, CDF search on one double otherwise

The :class:`Tape` class tracks the consumption cursor and the cached
uint32 half, so a real ``Generator`` can be re-synchronised at any point
via ``PCG64.advance`` (see :func:`generator_at`).

Everything here is validated against numpy itself by
``tests/trace/test_tape.py``; :func:`self_check` runs a fast subset and
is asserted at import time by the vectorized generator so silent numpy
behaviour changes degrade to the reference path instead of corrupting
traces.
"""

from __future__ import annotations

import base64
import math
import zlib

import numpy as np

__all__ = [
    "ZIG_R", "FE", "WE", "KE", "Tape", "raw_tape", "generator_at",
    "self_check",
]

#: ziggurat tail cutoff for the standard exponential (numpy's ``ziggurat_exp_r``)
ZIG_R = 7.69711747013104972

#: the three 256-entry ziggurat tables for ``standard_exponential``
#: (``fe_double``, ``we_double``, ``ke_double``), zlib+base64 so the
#: doubles are bit-exact rather than re-derived
_ZIG_PAYLOAD = (
    "eNo11Xc8V98fB/CbpMTXKImUq5KKktEgb45EiQpRESpKkrJXRolky8rMzt7rY++d7LJCCFnJTla/"
    "0x+/+8/z8TnnjnPf97xfH4L4d8yic8wuozLbZtDc31eKca3T6KjNlA0xOoV4X44xMB6cQj9WtWML"
    "LSZR6LObewIHJpBo0s1qQZUJdKq9wyLm8zjKr6GxGtccRzyC3CfdZn6gF59pQw2cfqAH8onqRQd/"
    "oFq211eqKscQjYbCs1XdMfQoPb7iJ9MYMk+5qideMopMnXsdgp6OohBXqz2FnKMofUWp4lHHCNIb"
    "9Fp74jaCjgwlpAdfHEH27pl8jZvfEUvbkHRf0XfU078jPtX6O2J7wCBzWOw7utsr8/3wxjDiViAp"
    "QeXDqESImfmZ0zCKUfQ45CU/jOolXhVO7hpGrjbO7KZfh9ARMc46ttghNGPY/KzZcAi9ZxUudhYb"
    "Qp5V++VEdwwhPk6+V91fBhFvq4qL+odBZCc2I1hgOohkddqnxi8OIu6F+5nDLIPIQubgpnjTN7Ra"
    "U+Z10uQbuiY11faG7RvyDguQFy8fQEoddmdl9AbQ+rkhc7/dA4j+YLzLgbJ+ZP2zwK5Hvx/R7Xsx"
    "UcLej3wHJfsq6vvQ/TXHnj6rPuQYy9BKw9uHcmfSdon0fUUudMFKem+/IkN7FX+/i1/RvV/HTmes"
    "9KLR5Y3O/LReJLkl5km8Ti9aPGjOZXGgF/meu6NHdvagBBva+bC3PYjpVUjE9JUeRK2p4kGzrQeJ"
    "auZR/yjvRh6o+LWrXTcS0ZLOnTjfjdSaKXpb/3QhTvvasPa8LvTd5K6psmUXmvTMEHA414XCwh9K"
    "qK90ovcTI0e+FnSiiP9q327adKKRo7JSlRKdyEL1F3mYqhM9nRHk4az9gn4lnn+a4fYF/YgpOdil"
    "8AUtuQ54vt3zBR34w8PQ9fUz6uh135Mc/Rn9KrXno33yGQ1fYJuaEfyMrkcJUN1Z7UBOWckCslUd"
    "6Jdd5uU8jw7U37p+LPZWBzrDLVjLeLADGUmJci1NtSPtQ2mXlPPa0XELmdvHHNvRhsVlOxOFdvT3"
    "Bd3cqf3t6Cutze+7E23oTnHI0AalDTmws9PTObWhXz7DA6+V21BhROEnvUNt6Glcz438uVYkrPx2"
    "xaCiFe2WmLju4dOK2r01Zxm0W9EJ2+f2S0Kt6Mllv2QJ6lak4vf3antyC3ohEaDxQ6EFhQ6OMxYu"
    "NqN5STVCNqQZxTue6vSSbEaiCodkPX40ofyZ7/sk3jahDcEcruhzTSiidVmEMvgJUbE1K1i5fUIz"
    "6QWaY6c/oTPSorqb3xpR7IiJbal7I5L41ZfPLdKI6NSnpE6NfkRXoFy+z/cjKtb4xsB74SPaVTPS"
    "xjrbgA6zSoxERjSgKN+x8FqFBvS86MjDN0QD+qKtGDGQWY/+7POobnpQj8Z++CveYK1HaRxO9U8a"
    "6tDmpYiCPXZ1SPTYvgIlwTo0+XrmwYGxWnSsN+6uZWgtSmkTuHlXqRYJPslYbd1eiyiVKrTNpTVo"
    "yYpfSsWiBl3x2P5Mm78GrVJA9fdYNQoQCOpmjqxGtZ9ONmSoVaOQJyJ0Hbur0bbEFSfL5irU8MWf"
    "J8y1CqXTr36TkqlCBnalSbpbqtDpFmqnnaWVSDL4vgmvTSWyGi+yqRWpRDofxdP7lyvQo05BLsPc"
    "CmSVNjv23KwCnTJu4NoQrkBce6d//V4oR6coKjZ6OeWoNDZvRtG8HFG/NLBOPVuOPCcb49ZnyxAL"
    "NfsjJ/MyBFWOaQurpehTgRf1pVelaK1Qa8l6RykK8ktl9fEuQV3XfGic2UvQ7Q17ffWYYpTOxL9I"
    "z1+M3vIY3w4pKMI5cEaF6lIR0lHRybzYUYjyRHrENbUK0bHFS63XZguQkb7wZRb7AlRgNuqSzlSA"
    "xJTvOHJG56PCarET90/no4W4LnvTujzECexvbqvnIQrra1m6WQriogj0eTpR0O+BjxoDHBQkUeTz"
    "cy0rF51tVSsYlctFx3u850O+5yCNoIsd++xyEEPmkbCHe3NQeERosGVWNmL7UcuufD0btXn6WyxP"
    "ZiGjbc1MWi5ZyCPshJIvTxaSjDFMcK3JRL7K5m8v6WQixY+3nOu3ZSIxDmd2xvgMtLd+qYv9Sgay"
    "CNArbO1KR6fHpYMXOdPRaBZ/bLhuGmJSFbzSnJmK5J5zbnXcSEETB7c/LJZLQU49pUzWwcnotf2T"
    "yqKJJCQyx3H5lVgSumpr4/DRKxE9s7Q3CPyegPRFz+8fF01A4TuSc4p94tGNdMrzPVNx6EIkT928"
    "TBz62F6z+2Z0LJqqCZgHIhax6/OwJN/7gP6y/b0cWR6D0ljQiwOHYxB9+a2Gw87R6POuhXs501Eo"
    "Kps9olU5Cil12tJbF0eimdX/1LJ4IpF3UHrdMncEemymZJ32NwzRcwirePe/R0aqq4pRpaEo9Lrv"
    "2Fh0CJLl3c2o6xaMdIOnlY+ZB6GAdedewQeByFIy2sRdJQApUSXHiV95h0pnnZuVLvij15qCR9rB"
    "DwmdLxhqEPNF9+6ZqMhI+KBZKk7aG9LeqLnOdWAj1AvdPmrAUkDxQCcbpG6udruhkvi3jyepXNGS"
    "WdIY5bQzamQdofMzcELahkoV+RmOyNgi+6fe2iv0p+ve8fnr9qhG02xV6bYdOisb+HnisDXiOjt9"
    "LoLaEm0c+t4cuGqKLkre1hPfboyY5ZteZas+RX83oxZcuh8h7pihBH1/LXREgl4ll08NFax7/t6Z"
    "pYDk6SKE9leJowrNMv/ph23AfkHTPUz1PvBdU7+S1fkECj3VE8/4GYMpr9zo2CFzsLeuXPNWtIJP"
    "ec9/tYnYQFDJs7zuaTsAjdors2L2YLTcyf3V6BUI8/R6UwU5wEcD8U2XbEc4uElXu6fmNVTJUYWt"
    "NDlBCV/8rGTLG2Bv3dvb1OAMhvc7VNRKXaD93KGb9qmusPWGZml9oBtUx/T3x9q5gyvy6LK55wFn"
    "beeuRYt7wh3TOatHbF6QpHCvhX7WC2iFHmu2V78FVfMnPy3kvWHdPvSybLY3pC9dcV5g94HIb/JT"
    "Hi994McViQmeER/g/yui037ZF+geHx4KT/IF+V6e2BB6P6ByeDbc/swPIrUPtik3+4GsrtHHY/z+"
    "sOvHmXsanv7gR9ekvzLlD9cMrY7TyL2DjdJ8ca/4d9DC318XRB0Ag4/pn53UCgDpxFVt5ZIAKPJ+"
    "/pyZPRBMn28/bGAWCCavXtgatgRC8JdNZQ7eIJge4jtl+ToIeGtaFV0GgkA6eqNEWSQYRHanSg34"
    "BEPZ1r/mJ6aCQc6FpVRKOgS02gOUj4SFQAP3vHT3UgiEBl59fu96KLi+RdmlcaEQvKnm92czFCLa"
    "jUJ2334PX+9U8jGlv4e1sVmveZow8NTvniu5Gwa3vaWemFPCYFPQ9jcHQzhIM7U45uiEgzbH8OiF"
    "knCI8KcarmWJgNzN23yXnkZAVCK1TmVVBPRACHPEf5GgnfnfsqZoJKxYmOwndSLBhJAv+u4dCee2"
    "GG9NLY6ER6esuWzHI2FPyl7RGyxRUGpnZCggGQVrLy2H9j6NgoDD4om0QVHgeEO8n6Y6CoarE72Z"
    "ZqNgG0Nmx9H90XA8pjL7mmw0RLC1ijmaRUNSk7tZQ2Q0aIrFPjzYFA0H925l9vgTDcwWa7Y7eWIg"
    "isMtKexGDMzucwq59DIG1n+1XKVJiYFnwp7l/d0xUE2rsNi07QO0Pr001iX0AeKfGvuv3/sA1Y71"
    "6+D5AT6w6R8IKfwAkzKNiyzjH2CN6HmVticWVnJPVOtejIWjhoLFF4xj4c/76/riEbFwxo/5s3pT"
    "LPC03FoNW4sF/n2m36l548AjVCPARzUOZqY6OGSc4+AbeL7gosTBjji1Ru7ROFhLVGRWZomH/dSr"
    "WikX40GgzbJN0DQednJnWoxEx8PvvXb6Ne3xYGnS/OkLVQLwjn0rZBVOgB87tNRcHySACuOHFn7/"
    "BPC//0l2R00C7N6zucC6nABDpl7UGkcTwc3hTFa3aiIsFkmKerklgubWul674kRQmujvS5hJhJNq"
    "rW5MB5PAu/bWGYpyEjAutAqFvkkCa51X38oLkuBvysewYz+TINfdoLODKxmkjrSsVKkkA0VByGbV"
    "JRmYeLZ/tSpJBqeNk2GS88lwclDquvLRFPiQOemQpZECa4cPd9/zTYGnse8WNOpTwN74p2PyZgqk"
    "zgtcuHYmFTZjOH9efJoKO2M9lX1iUuHlmXa5c19TIVSRJ+fc7jS48YHV1l8+DV4eXgxReJ0GVhZy"
    "e/RL0uCxj/r6+DIeL440aBRIh9a7SkEs+ukwOvQruzY2Hbpp+3eODKbDZ+Y/1ucYMoBDlPnX6RMZ"
    "EMPtG64vlwFfeZhb+h5nAGPq+RZX5wxgrxf+bRqXAYb+ROL7mgzIa/mluG00A5p/0T1Kp84EuT2+"
    "T95zZwLfecPpJulMqKCudpLRyYTwNMN+6jeZwGUVHf9ffCbc4bWK06rPBCPh0CSqyUyIXpz1m6fL"
    "AsVRhRvC/FlQKCY5VquYBXG9dVrpplnApyw1MROQBUpfZXKcC7PA6GQAg+1AFuio8ag1U2VDazwv"
    "3auj2aDTIJYdcDUbbiV4rDCbZMNFpdPvlwKzwdHd01q6FJ83kOqxZTQbUmeWJk7R58CKVElDu3AO"
    "nGjgcPqpngNC/h1Bjq9z4GqUZnxQag4czdxvI9CVAzveFexQ2JILWUkpxit8uXAnfoVG8HYuaElz"
    "XN1wyIXtQyKrWum5EF7isvVhXy48Z9sRuGMnBfz5bbhvilBAaLHqvoIuBWZkA+U2AijAaRNySqeO"
    "AtuPLGZ6rlCArV2j2Y43D6qMS4ZBMw/+GOvntnvnQYcFi93lmjzYxWIwEbOK50vLT8wJ5IOU6WMa"
    "0cf5kKyu1+wUmQ/vzoo5DPfkg7T5QvsdlgJg4F0/vaZQAN37POdaPQpgsof7/OTHArCauyJxa2ch"
    "iF0dv3hEvhAm36RWPvYshGqZbgfhtkLYSdlaHsxaBIyTPoqZmkVwt9ei3SeuCCx/yQ+ozBVB/GDl"
    "BVaJYlisr5da9CiGl4nz04wDxVAjclTfU7AEpsWmDf2dSyBi7nq64mAJ3KdlN5gXK4UKxwXe9JBS"
    "kJtU1K1cL4X43z6BBtplMFq7fHGzsQz4p7Wzh/eXwy+vJXfmW+VwPbaxqcKnHCJlNa0EW8shzvfi"
    "1gTmCuCVNte1ulUBnZXZxVsjKsB2tSGyeKoCInzUKHzilRCbdCVtya8SZpml3b7PVsLd35+OzqhU"
    "gVZ+fd31iirQ3j3yKPBcNbQpXW7qKqiGZdMW6JargfbdpkPWMzVgUib/TDepFk7VTnYqOtcB+8/5"
    "sQi/enCykf2vb6IB1o17lcKrGsGx6MXxnoZmqA3kPspyYz/x/+OF4PsudbvdBBMgryUDNiItg0Eo"
    "L3QfYSvN/vtoGwexT8eF8cC7/YSJqMbJTY4DRBab/hf1FwcIoxN7+083HCDqw1K+0VJzEmetPhvb"
    "CHMS0Xm2e93vcBJPqQ1ppWw4CYm0Hen/BXIS4bPXM5fSOIlbOjnbS6o4ieZg59nlL5yEyy2DNJYx"
    "TqJ1/9mPBoucxIfP/RbyW0iCEhC/+zs9SVj/ntN7sJckjI7I0M9zkYRZghJ72nGSELpZ8DZTkCRo"
    "Km4r7RIliat6BlPDiCRWXbqEhC+RBMP5A2VMV0nikLDGVWclkiifrqKNukUSAcG0PY/UScKjlclh"
    "8B5JmNyW7md5SBJWAU7LtI9JYoyKj7dGnyQWR4TE5Q1J4vyct3GkCUl00l4LrDfH99Gg5qizwvPo"
    "wq4IG5Jwi9h+SfkFSYgwD4uN2ZOEtk+q+B1HkthVcOt+phP+LZXl+tMZr8vMz5zJjSRSRMULOTxI"
    "Qq5V5hOTF0mwSmyhmntLEoOqjgElPiTRnX45xdKPJHofuitwvSMJX5EHVvkBWJcA+gtBJGFfeGmo"
    "MJgkiJd6xTyhuD7GHLec3pMEVXeLWlcYSTRHaekeiMDrPEvLohqJ1yV8fso5iiTWq/UNU6NJwoGm"
    "eV9DDElEP5m59/UDSdjSXksaicXjuiN3R+NIopoztq8//l+dx2ybE0hi5l6zX14iSajmpxoFJ+G6"
    "O6jeNUsmidfbzGJkU0hiPKLMgTUVP8/httgA9umB+R2RaSTxIoONWyMd18FavXJXBq7Xt1es1djV"
    "OYqiUSaua0BW+N4sXIeEb3yFWLbrLw+qZpMEfWlD3By2M4V+6E0OXrdf3cLeXJJI2qghYrGqm+eO"
    "8VNIYueWBpdsbND2XHQmjyQS7PoeZ2N3FHZy8ueTxPLlrTaxWDPGkHfsBSRBbVLo5IblMXyutYJ9"
    "Mzwj/qAQ13/6wqlGrLRPjqxAEUkMf0h774sNp6qHeaz/8XZRhWKS+Cw5FJOIDX+r4ralhCTemwys"
    "3cI+6XSnScJKosa8VezAQ9P9V0pJ4q5eg+Q77LHMNwLfsGZaA8s8Zfj+bg7hT7HV1ImCGdiMDcbC"
    "OayLDNUFwXKSyFJRbzHA8rC4P0vCuukFHx7BPnQ7/oejgiSk2O2WlLByjJbkG2yOWbhd/r/xSS7W"
    "CezAti8zeytJYtMR/pPBViq8sTDCMjzwPhWCvWQ/AZXYnNr26HHs9KELOv9V4fn3A84C2NoXdAw3"
    "sCuPvq0aY98c41Xyxq4Gmu1OxcoKb5Gux0omfxoZwiZc8/r9B3tfMd+OqZokHm9YWh3B1pbljotg"
    "eZn3tMhhxy8v8qljqWWe/tXDZm1RvGKJzV/jo3XELr+UkfDE7msP/vEOmyHQvzUMK5Tz3Ccau77d"
    "yysO67E2tZKADZ9kbU7Enl69QPfPyGPXU//Nm/HXZ/w7f/jkGPO/6xdPOn36d7/yuzx9Hljrw9Ni"
    "DtixgYAxc6zDi1edutiz5WHbVLFc/EbPLmGDGum2C2MZDP5rPPBvfUUBmTRY7UbZrJ/4fUFNorod"
    "m+OzbSAXe1UreCkA6ytzh7DAGvnRLPyrI9uxrIqTWBerkns0WO35xrI+XPfwiIKODOzs+lsPB+zD"
    "uee9Sv/GOygpnNhbuh5z4/h7QtG5gAwsU1PfG3MspdMs7RyWhbtoeRnviw/X2GSzsbPp7q5P/+2T"
    "Bd/IQ9h8E0bjL3hfecke73+N3Vl7qkYAW0tvub0H78deOyF7OyxLnDwtJ3aH9BnrQrx/eVYK4m9g"
    "93HVPhjD+33k2gk7c2xS3oOyv7gfosfQ/GusR1tkDzU2xWjfmZe4f9govmULuK/Wkz/za2NZ5fYK"
    "f8T9p6JuYcGH1XBVf++E+9P/5hfJbty3Uno9vw9hB88ZXtXBfd2uV1YWjvv90o+t9c24/yXeK7cs"
    "4ly4cUxaiAlLHXBHggvnRuWQlAA3zpG459WCHDhfqId0b1PjvDE5WRY2gPNoJ43kWALOp2N/gxe0"
    "cF5FPzLU2YHzCzwVs0NwrrHMt/HsxTlHTLp/tsH5519e41eLc5FlwW5xEeflzlJ9YWqcn8V/nvPN"
    "4VytTt4jnR+C63nKSv0mzl8r1JpchXN5fq45ccOXJPaPhPSu4/xecTINL8C5ThNweZrXFdf9K/Uf"
    "GZz/IVvPVm3g/wWeCVErKVuS+MSrGkNY4uu49zFyGeP+OJN32uEJSTwaTiCIB/h53xW8H93B78Pc"
    "fN1EEX8nQ41HddL4PdTcYkbP4vWdVjzNwoPXS21DLcGM93Hj7dW0ZU6Cc49LlEcHJ5FxchdnXDQn"
    "YcvjXqelhn/TpfAt9x8gysdHeq593U/8D9zwKWU="
)


def _load_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    raw = zlib.decompress(base64.b64decode(_ZIG_PAYLOAD))
    fe = np.frombuffer(raw, dtype="<f8", count=256, offset=0).copy()
    we = np.frombuffer(raw, dtype="<f8", count=256, offset=2048).copy()
    ke = np.frombuffer(raw, dtype="<u8", count=256, offset=4096).copy()
    for arr in (fe, we, ke):
        arr.setflags(write=False)
    return fe, we, ke


FE, WE, KE = _load_tables()

#: KE as a plain list of ints — the scalar hot path avoids numpy scalars
_KE_LIST = KE.tolist()
_WE_LIST = WE.tolist()
_FE_LIST = FE.tolist()

_M32 = 0xFFFFFFFF
_INV53 = 2.0 ** -53


def raw_tape(state: dict, count: int) -> np.ndarray:
    """``count`` raw ``next_uint64`` outputs of a PCG64 at ``state``.

    ``state`` is a ``bit_generator.state`` dict.  Full-range
    ``integers`` is special-cased by numpy to the raw bit stream, so
    this runs at C speed and consumes exactly ``count`` tape tokens.
    """
    bg = np.random.PCG64()
    bg.state = state
    gen = np.random.Generator(bg)
    return gen.integers(0, 2 ** 64, dtype=np.uint64, size=count)


def generator_at(state: dict, pos: int, has32: bool = False,
                 cached: int = 0) -> np.random.Generator:
    """A real numpy ``Generator`` positioned ``pos`` tape tokens after
    ``state``, with the uint32 half-cache restored."""
    bg = np.random.PCG64()
    bg.state = state
    bg.advance(pos)
    st = bg.state
    st["has_uint32"] = int(bool(has32))
    st["uinteger"] = int(cached)
    bg.state = st
    return np.random.Generator(bg)


class Tape:
    """Scalar draw-stream replica over a pre-generated uint64 tape.

    Mirrors the exact consumption and values of a numpy ``Generator``
    for the draw types used by the trace generator.  ``pos`` counts
    consumed tape tokens; ``has32``/``cached`` mirror the generator's
    internal uint32 half-cache (``has_uint32``/``uinteger``).
    """

    __slots__ = ("tokens", "pos", "has32", "cached")

    def __init__(self, tokens, pos: int = 0, has32: bool = False,
                 cached: int = 0) -> None:
        #: plain python ints; list indexing beats numpy scalar extraction
        self.tokens = tokens.tolist() if isinstance(tokens, np.ndarray) else list(tokens)
        self.pos = pos
        self.has32 = has32
        self.cached = cached

    # -- primitives ---------------------------------------------------

    def u64(self) -> int:
        v = self.tokens[self.pos]
        self.pos += 1
        return v

    def random(self) -> float:
        return (self.u64() >> 11) * _INV53

    def u32(self) -> int:
        if self.has32:
            self.has32 = False
            return self.cached
        v = self.u64()
        self.has32 = True
        self.cached = v >> 32
        return v & _M32

    def integers(self, excl: int) -> int:
        """``Generator.integers(0, excl)`` for ``excl <= 2**32`` —
        Lemire's multiply-shift with rejection on uint32 halves.

        A single-value range consumes no bits (numpy returns the offset
        directly), and the full 32-bit range is the raw next_uint32.
        """
        if excl == 1:
            return 0
        if excl == 2 ** 32:
            return self.u32()
        m = self.u32() * excl
        leftover = m & _M32
        if leftover < excl:
            threshold = (2 ** 32 - excl) % excl
            while leftover < threshold:
                m = self.u32() * excl
                leftover = m & _M32
        return m >> 32

    def uniform(self, lo: float, hi: float) -> float:
        return lo + (hi - lo) * self.random()

    # -- distributions ------------------------------------------------

    def std_exp(self) -> float:
        """256-level ziggurat ``standard_exponential``."""
        while True:
            ri = self.u64() >> 3
            idx = ri & 0xFF
            ri >>= 8
            x = ri * _WE_LIST[idx]
            if ri < _KE_LIST[idx]:
                return x
            if idx == 0:
                return ZIG_R - math.log1p(-self.random())
            if ((_FE_LIST[idx - 1] - _FE_LIST[idx]) * self.random()
                    + _FE_LIST[idx] < math.exp(-x)):
                return x

    def geometric(self, p: float) -> int:
        """``Generator.geometric(p)``: CDF search for p >= 1/3,
        exponential inversion below."""
        if p >= 0.333333333333333333333333:
            u = self.random()
            x = 1
            s = prod = p
            q = 1.0 - p
            while u > s:
                prod *= q
                s += prod
                x += 1
            return x
        return math.ceil(-self.std_exp() / math.log1p(-p))

    # -- state --------------------------------------------------------

    def state(self) -> tuple[int, bool, int]:
        return (self.pos, self.has32, self.cached)

    def restore(self, state: tuple[int, bool, int]) -> None:
        self.pos, self.has32, self.cached = state


def choice_cdf(probs: np.ndarray) -> np.ndarray:
    """The cumulative table ``Generator.choice`` builds internally from
    ``p`` (cumsum then normalise by the last entry); choice picks
    ``searchsorted(cdf, u, side="right")`` per uniform draw."""
    cdf = probs.cumsum()
    cdf /= cdf[-1]
    return cdf


def self_check(seed: int = 12345, n: int = 4096) -> bool:
    """Fast replica-vs-numpy equivalence check (used as an import-time
    gate by the vectorized generator)."""
    ref = np.random.default_rng(seed)
    state = ref.bit_generator.state
    tape = Tape(raw_tape(state, n))
    try:
        for i in range(600):
            kind = i % 6
            if kind == 0:
                if ref.random() != tape.random():
                    return False
            elif kind == 1:
                if int(ref.integers(0, 8)) != tape.integers(8):
                    return False
            elif kind == 2:
                if int(ref.integers(0, 24576)) != tape.integers(24576):
                    return False
            elif kind == 3:
                if int(ref.geometric(1.0 / 6.0)) != tape.geometric(1.0 / 6.0):
                    return False
            elif kind == 4:
                if int(ref.geometric(1.0 / 2.6)) != tape.geometric(1.0 / 2.6):
                    return False
            else:
                if ref.uniform(0.35, 0.65) != tape.uniform(0.35, 0.65):
                    return False
    except IndexError:
        return False
    # the re-synchronised generator must agree with the reference
    resync = generator_at(state, tape.pos, tape.has32, tape.cached)
    return bool(resync.bit_generator.state == ref.bit_generator.state)
