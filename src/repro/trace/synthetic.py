"""Synthetic instruction-trace generation.

Replaces the SPECint2000 traces the paper gathers with SimpleScalar-style
tooling.  A :class:`SyntheticTraceGenerator` first lays out a *static
program skeleton* — basic blocks with fixed addresses, terminator kinds,
branch targets and per-branch behaviour — then walks it, emitting dynamic
instructions whose register dependences, memory addresses and branch
outcomes follow the knobs of a :class:`~repro.trace.profiles.BenchmarkProfile`.

Design notes
------------
* **Dependences** — each source operand is either architecturally live-in
  (registers 0..7, never written) or refers to the destination written
  ``j`` dynamic writes earlier, with ``j`` geometric around
  ``dep_mean_distance``.  The realised dependence-distance distribution is
  the statistic that produces the IW power-law of paper §3.
* **Control flow** — block terminators are conditional branches or jumps.
  Loop back-edges follow a trip-count automaton (mispredicted only at
  loop exit by a history predictor), biased branches are Bernoulli with a
  strong bias, and "hard" branches are near-50/50 — these set the gShare
  misprediction rate.
* **Memory** — load/store addresses come from a three-region mixture
  (small stack, strided streams, large heap with tunable temporal
  locality).  Footprints relative to the cache geometry produce the
  short/long miss rates and the long-miss clustering used by Eq. 8.
* Realised class fractions: control instructions appear once per block,
  so the dynamic branch fraction is ~``1/mean_block_size`` scaled by the
  branch:jump ratio of the profile; body instructions are drawn from the
  remaining mix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.instruction import NO_REG
from repro.isa.opclass import OpClass
from repro.trace.profiles import BenchmarkProfile, get_profile
from repro.trace.trace import Trace

#: registers 0..LIVE_IN_REGS-1 are never written: reading them models a
#: long-distance (always-ready) dependence
LIVE_IN_REGS = 8

#: address-space region bases (comfortably disjoint).  The low bits are
#: deliberately staggered: bases that are multiples of large powers of two
#: all map to cache set 0, piling every region onto the same sets and
#: manufacturing conflict misses no real address-space layout would have.
STACK_BASE = 0x7FF0_4A00
STREAM_BASE = 0x2000_0000
STREAM_SPACING = 0x0100_0000
#: per-stream extra offset spreading streams across the L2 index space
#: (the L2 index wraps every 128 KB for the baseline geometry)
STREAM_STAGGER = 0x9400
HEAP_BASE = 0x4000_CC80
CODE_BASE = 0x0040_1180

#: granularity of the heap temporal-locality recency buffer (bytes);
#: matches the paper's 128-byte cache lines
_LOCALITY_LINE = 128
_RECENCY_DEPTH = 16

_BODY_CLASSES = (
    OpClass.LOAD,
    OpClass.STORE,
    OpClass.IMUL,
    OpClass.IDIV,
    OpClass.FALU,
    OpClass.FMUL,
    OpClass.FDIV,
    OpClass.IALU,
)

# terminator behaviour kinds
_KIND_LOOP = 0
_KIND_BIASED = 1
_KIND_HARD = 2
_KIND_JUMP = 3


@dataclass(frozen=True)
class _StaticBlock:
    """One basic block of the synthetic program skeleton."""

    index: int
    addr: int            #: pc of the first instruction
    size: int            #: instructions including the terminator
    kind: int            #: terminator kind (_KIND_*)
    target: int          #: taken-successor block index (branches)
    trip_count: int      #: for loops: taken trip_count-1 times, then exits
    taken_prob: float    #: for biased/hard branches
    #: candidate targets for jumps; a jump picks one per dynamic execution
    #: (call/indirect-jump behaviour).  Static jump targets would make the
    #: block walk deterministic inside jump-only cycles and trap it there.
    jump_targets: tuple[int, ...] = ()

    @property
    def terminator_pc(self) -> int:
        return self.addr + 4 * (self.size - 1)


class _StaticProgram:
    """The static skeleton: block layout plus taken-successor structure."""

    def __init__(self, profile: BenchmarkProfile, rng: np.random.Generator):
        n = profile.num_static_blocks
        sizes = 2 + rng.geometric(
            1.0 / max(1.0, profile.mean_block_size - 2.0), size=n
        )
        addrs = CODE_BASE + 4 * np.concatenate([[0], np.cumsum(sizes[:-1])])

        control_total = profile.frac_branch + profile.frac_jump
        p_jump = profile.frac_jump / control_total if control_total > 0 else 0.0

        blocks: list[_StaticBlock] = []
        for b in range(n):
            u = rng.random()
            jump_targets: tuple[int, ...] = ()
            if u < p_jump:
                kind = _KIND_JUMP
                jump_targets = tuple(
                    int(t) for t in rng.integers(0, n, size=4)
                )
                target = jump_targets[0]
                trip, p_taken = 0, 1.0
            else:
                v = rng.random()
                if v < profile.frac_loop_branches and b > 0:
                    kind = _KIND_LOOP
                    # back-edge to a nearby earlier block (the loop head)
                    span = int(rng.integers(1, min(8, b) + 1))
                    target = b - span
                    trip = max(2, int(rng.geometric(1.0 / profile.mean_trip_count)))
                    p_taken = 0.0
                elif v < profile.frac_loop_branches + profile.frac_hard_branches:
                    kind = _KIND_HARD
                    target = int(rng.integers(0, n))
                    trip = 0
                    p_taken = float(rng.uniform(0.35, 0.65))
                else:
                    kind = _KIND_BIASED
                    # forward skip, as in if/else hammocks
                    target = (b + int(rng.integers(2, 9))) % n
                    trip = 0
                    p_taken = profile.biased_taken_prob
            blocks.append(
                _StaticBlock(
                    index=b, addr=int(addrs[b]), size=int(sizes[b]),
                    kind=kind, target=target, trip_count=trip,
                    taken_prob=p_taken, jump_targets=jump_targets,
                )
            )
        self.blocks = blocks

    def __len__(self) -> int:
        return len(self.blocks)


class _RegisterAllocator:
    """Destination allocation plus distance-controlled source selection."""

    def __init__(self, profile: BenchmarkProfile, rng: np.random.Generator,
                 num_regs: int):
        self._rng = rng
        self._profile = profile
        self._writable = list(range(LIVE_IN_REGS, num_regs))
        self._next = 0
        # ring buffer of recently written registers, most recent last
        self._recent: list[int] = []
        self._recent_cap = 4 * len(self._writable)
        self._geom_p = 1.0 / profile.dep_mean_distance

    def allocate_dst(self) -> int:
        """Round-robin over the writable registers: maximises the time
        before a register is overwritten, so requested dependence
        distances survive renaming."""
        reg = self._writable[self._next]
        self._next = (self._next + 1) % len(self._writable)
        self._recent.append(reg)
        if len(self._recent) > self._recent_cap:
            del self._recent[: -self._recent_cap]
        return reg

    def pick_source(self) -> int:
        """A source register at geometric dependence distance, or a
        live-in register."""
        if not self._recent or self._rng.random() < self._profile.frac_live_in:
            return int(self._rng.integers(0, LIVE_IN_REGS))
        j = int(self._rng.geometric(self._geom_p))
        if j > len(self._recent):
            return int(self._rng.integers(0, LIVE_IN_REGS))
        return self._recent[-j]


class _AddressStream:
    """Three-region data-address mixture (stack / streams / heap)."""

    def __init__(self, profile: BenchmarkProfile, rng: np.random.Generator):
        self._rng = rng
        self._p = profile
        total = profile.stack_frac + profile.stream_frac + profile.heap_frac
        self._cum_stack = profile.stack_frac / total
        self._cum_stream = self._cum_stack + profile.stream_frac / total
        self._stream_pos = [0] * profile.num_streams
        self._recent_lines: list[int] = []

    def next_address(self) -> int:
        u = self._rng.random()
        if u < self._cum_stack:
            off = int(self._rng.integers(0, max(4, self._p.stack_bytes) // 4)) * 4
            return STACK_BASE + off
        if u < self._cum_stream:
            s = int(self._rng.integers(0, self._p.num_streams))
            addr = (STREAM_BASE + s * (STREAM_SPACING + STREAM_STAGGER)
                    + self._stream_pos[s])
            self._stream_pos[s] = (
                self._stream_pos[s] + self._p.stream_stride
            ) % self._p.stream_bytes
            return addr
        return self._heap_address()

    def _heap_address(self) -> int:
        if self._recent_lines and self._rng.random() < self._p.heap_locality:
            line = self._recent_lines[
                int(self._rng.integers(0, len(self._recent_lines)))
            ]
        else:
            num_lines = max(1, self._p.heap_bytes // _LOCALITY_LINE)
            line = int(self._rng.integers(0, num_lines))
            self._recent_lines.append(line)
            if len(self._recent_lines) > _RECENCY_DEPTH:
                del self._recent_lines[0]
        off = int(self._rng.integers(0, _LOCALITY_LINE // 4)) * 4
        return HEAP_BASE + line * _LOCALITY_LINE + off


class SyntheticTraceGenerator:
    """Generates reproducible dynamic traces for one benchmark profile.

    Example:
        >>> from repro.trace import SyntheticTraceGenerator, get_profile
        >>> gen = SyntheticTraceGenerator(get_profile("gzip"))
        >>> trace = gen.generate(10_000)
        >>> len(trace)
        10000
    """

    def __init__(self, profile: BenchmarkProfile, num_regs: int = 64):
        if num_regs <= LIVE_IN_REGS + 1:
            raise ValueError(f"num_regs must exceed {LIVE_IN_REGS + 1}")
        self.profile = profile
        self.num_regs = num_regs

    def generate(self, length: int | None = None, seed: int | None = None) -> Trace:
        """Produce a trace of ``length`` dynamic instructions.

        Args:
            length: dynamic instruction count; defaults to the profile's
                ``default_length``.
            seed: RNG seed; defaults to the profile's ``seed`` so repeated
                calls yield identical traces.
        """
        profile = self.profile
        n = profile.default_length if length is None else int(length)
        if n <= 0:
            raise ValueError("trace length must be positive")
        rng = np.random.default_rng(profile.seed if seed is None else seed)

        program = _StaticProgram(profile, rng)
        regs = _RegisterAllocator(profile, rng, self.num_regs)
        mem = _AddressStream(profile, rng)

        body_classes, body_probs = _body_mix(profile)

        pc = np.zeros(n, dtype=np.int64)
        opclass = np.zeros(n, dtype=np.int8)
        dst = np.full(n, NO_REG, dtype=np.int16)
        src1 = np.full(n, NO_REG, dtype=np.int16)
        src2 = np.full(n, NO_REG, dtype=np.int16)
        addr = np.zeros(n, dtype=np.int64)
        taken = np.zeros(n, dtype=np.bool_)
        target = np.zeros(n, dtype=np.int64)

        # pre-draw body opclasses in bulk; the walk consumes them in order
        pool = rng.choice(body_classes, size=n, p=body_probs)
        pool_i = 0

        loop_counters = [0] * len(program)
        block = program.blocks[int(rng.integers(0, len(program)))]
        k = 0
        while k < n:
            # --- block body -------------------------------------------
            body = block.size - 1
            for slot in range(body):
                if k >= n:
                    break
                cls = OpClass(int(pool[pool_i])); pool_i += 1
                if pool_i >= n:
                    pool = rng.choice(body_classes, size=n, p=body_probs)
                    pool_i = 0
                pc[k] = block.addr + 4 * slot
                opclass[k] = int(cls)
                if cls == OpClass.LOAD:
                    src1[k] = regs.pick_source()
                    dst[k] = regs.allocate_dst()
                    addr[k] = mem.next_address()
                elif cls == OpClass.STORE:
                    src1[k] = regs.pick_source()
                    src2[k] = regs.pick_source()
                    addr[k] = mem.next_address()
                else:
                    src1[k] = regs.pick_source()
                    if rng.random() < profile.frac_two_sources:
                        src2[k] = regs.pick_source()
                    dst[k] = regs.allocate_dst()
                k += 1
            if k >= n:
                break

            # --- terminator -------------------------------------------
            pc[k] = block.terminator_pc
            if block.kind == _KIND_JUMP:
                opclass[k] = int(OpClass.JUMP)
                taken[k] = True
                is_taken = True
                dyn_target = block.jump_targets[
                    int(rng.integers(0, len(block.jump_targets)))
                ]
            else:
                opclass[k] = int(OpClass.BRANCH)
                src1[k] = regs.pick_source()
                if block.kind == _KIND_LOOP:
                    b = block.index
                    loop_counters[b] += 1
                    if loop_counters[b] < block.trip_count:
                        is_taken = True
                    else:
                        is_taken = False
                        loop_counters[b] = 0
                else:
                    is_taken = bool(rng.random() < block.taken_prob)
                taken[k] = is_taken
                dyn_target = block.target
            succ = dyn_target if is_taken else (block.index + 1) % len(program)
            next_block = program.blocks[succ]
            target[k] = next_block.addr if is_taken else 0
            k += 1
            block = next_block

        return Trace(pc, opclass, dst, src1, src2, addr, taken, target,
                     name=profile.name)


def _body_mix(profile: BenchmarkProfile) -> tuple[np.ndarray, np.ndarray]:
    """Normalised opclass distribution for non-control instructions."""
    mix = profile.full_mix()
    classes = [c for c in _BODY_CLASSES if mix.get(c, 0.0) > 0.0]
    probs = np.array([mix[c] for c in classes], dtype=float)
    probs /= probs.sum()
    return np.array([int(c) for c in classes], dtype=np.int8), probs


def generate_trace(
    benchmark: str, length: int | None = None, seed: int | None = None
) -> Trace:
    """Convenience wrapper: trace for a named SPECint2000 stand-in."""
    return SyntheticTraceGenerator(get_profile(benchmark)).generate(length, seed)
