"""Dynamic instruction traces: container, synthesis, and analysis.

The paper's model is driven entirely by instruction traces plus cheap
functional simulation over them.  This package provides the columnar
:class:`Trace` container, the SPECint2000 stand-in profiles and synthetic
generator, and trace-statistics utilities.
"""

from repro.trace.trace import Trace, Dependences
from repro.trace.profiles import (
    BenchmarkProfile,
    SPECINT2000,
    BENCHMARK_ORDER,
    get_profile,
)
from repro.trace.synthetic import SyntheticTraceGenerator, generate_trace
from repro.trace.analysis import (
    TraceStatistics,
    analyze_trace,
    event_distances,
    group_size_distribution,
)

__all__ = [
    "Trace",
    "Dependences",
    "BenchmarkProfile",
    "SPECINT2000",
    "BENCHMARK_ORDER",
    "get_profile",
    "SyntheticTraceGenerator",
    "generate_trace",
    "TraceStatistics",
    "analyze_trace",
    "event_distances",
    "group_size_distribution",
]
