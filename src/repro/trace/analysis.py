"""Trace-level statistics.

The paper's model parameters come from "simple trace-driven simulations"
and "instruction trace analysis" (§1.2, §4).  This module provides the
pure trace-analysis half: instruction mix, mix-weighted mean latency,
dependence-distance distributions, and inter-event distance utilities
reused by the miss-event collector (e.g. the long-miss group-size
distribution f_LDM of Eq. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.isa.latency import LatencyTable
from repro.isa.opclass import OpClass
from repro.trace.trace import Trace


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of one trace.

    Attributes:
        length: dynamic instruction count.
        mix: dynamic opclass frequencies.
        mean_latency: mix-weighted mean functional-unit latency (the
            "Avg. Lat." column of paper Table 1, before any short-miss
            adjustment).
        branch_fraction: fraction of conditional branches.
        load_fraction / store_fraction: memory-op fractions.
        mean_dependence_distance: mean producer->consumer distance over
            present register source operands.
        dependence_distance_histogram: counts of distances 1..len(hist);
            distances beyond the histogram length are clamped into the
            last bucket.
    """

    length: int
    mix: Mapping[OpClass, float]
    mean_latency: float
    branch_fraction: float
    load_fraction: float
    store_fraction: float
    mean_dependence_distance: float
    dependence_distance_histogram: np.ndarray

    @property
    def instructions_per_branch(self) -> float:
        """Mean number of instructions between conditional branches."""
        if self.branch_fraction == 0:
            return float("inf")
        return 1.0 / self.branch_fraction


def analyze_trace(
    trace: Trace,
    latency_table: LatencyTable | None = None,
    histogram_bins: int = 64,
) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for ``trace``."""
    if len(trace) == 0:
        raise ValueError("cannot analyze an empty trace")
    table = latency_table or LatencyTable()
    mix = trace.instruction_mix()
    deps = trace.dependences()
    distances = deps.distances()
    if distances.size:
        mean_dist = float(distances.mean())
        clipped = np.minimum(distances, histogram_bins)
        hist = np.bincount(clipped, minlength=histogram_bins + 1)[1:]
    else:
        mean_dist = float("inf")
        hist = np.zeros(histogram_bins, dtype=np.int64)
    return TraceStatistics(
        length=len(trace),
        mix=mix,
        mean_latency=table.mean_latency(mix),
        branch_fraction=float(trace.branches.mean()),
        load_fraction=float(trace.loads.mean()),
        store_fraction=float(trace.stores.mean()),
        mean_dependence_distance=mean_dist,
        dependence_distance_histogram=hist,
    )


class StreamingTraceAnalyzer:
    """Chunk-at-a-time :func:`analyze_trace` with O(chunk) peak memory.

    Feed every chunk of a stream (in order) through :meth:`update`, then
    :meth:`finalize`.  Produces exactly the statistics
    :func:`analyze_trace` computes on the concatenated trace: the
    internal :class:`~repro.trace.trace.StreamingRenamer` carries the
    register producer map across chunk boundaries, so dependence
    distances that span chunks are counted identically.
    """

    def __init__(self, latency_table: LatencyTable | None = None,
                 histogram_bins: int = 64) -> None:
        from repro.trace.trace import StreamingRenamer

        self._table = latency_table or LatencyTable()
        self._bins = histogram_bins
        self._renamer = StreamingRenamer()
        self._n = 0
        self._class_counts = np.zeros(len(OpClass), dtype=np.int64)
        self._dist_sum = 0
        self._dist_count = 0
        self._hist = np.zeros(histogram_bins + 1, dtype=np.int64)

    def update(self, chunk: Trace) -> None:
        """Fold one chunk into the running statistics."""
        base = self._n
        deps = self._renamer.rename_chunk(chunk)
        idx = np.arange(base, base + len(chunk), dtype=np.int64)
        for dep in (deps.dep1, deps.dep2):
            present = dep >= 0
            d = idx[present] - dep[present]
            self._dist_sum += int(d.sum())
            self._dist_count += int(d.size)
            self._hist += np.bincount(
                np.minimum(d, self._bins), minlength=self._bins + 1
            )
        self._class_counts += np.bincount(
            chunk.opclass.astype(np.int64), minlength=len(OpClass)
        )
        self._n += len(chunk)

    def finalize(self) -> TraceStatistics:
        """The statistics of everything folded in so far."""
        n = self._n
        if n == 0:
            raise ValueError("cannot analyze an empty stream")
        counts = self._class_counts
        mix = {
            OpClass(c): counts[c] / n
            for c in range(len(OpClass)) if counts[c]
        }
        if self._dist_count:
            mean_dist = self._dist_sum / self._dist_count
        else:
            mean_dist = float("inf")
        return TraceStatistics(
            length=n,
            mix=mix,
            mean_latency=self._table.mean_latency(mix),
            branch_fraction=float(counts[int(OpClass.BRANCH)] / n),
            load_fraction=float(counts[int(OpClass.LOAD)] / n),
            store_fraction=float(counts[int(OpClass.STORE)] / n),
            mean_dependence_distance=mean_dist,
            dependence_distance_histogram=self._hist[1:].copy(),
        )


@dataclass(frozen=True)
class ModelInputs:
    """Everything the first-order model needs, measured from one trace.

    This is the bridge that makes *ingested* foreign traces first-class
    model workloads: where a synthetic profile carries its parameters by
    construction, :func:`extract_model_inputs` measures the same
    quantities from any chunk stream — the dependence-distance power law
    (paper §3), the instruction mix and mean latency (Table 1), branch
    predictability under the baseline gShare, and code/data footprints
    for locality context.

    Attributes:
        statistics: the full :class:`TraceStatistics` of the trace.
        alpha / beta / r_squared: the fitted ``I = alpha * W**beta``
            IW characteristic (Figure 5); NaN when the trace is too
            short or degenerate to fit.
        mispredict_rate: baseline gShare(8K) misprediction rate over the
            trace's conditional branches (0 when there are none).
        taken_rate: fraction of conditional branches taken.
        code_footprint: distinct instruction pcs.
        data_footprint_lines: distinct 64-byte lines touched by memory
            ops.
        fit_length: instructions the IW fit actually used (the fit
            simulates scheduling, so it runs on a bounded prefix).
        window_sizes: window sizes the IW curve was measured at.
    """

    statistics: TraceStatistics
    alpha: float
    beta: float
    r_squared: float
    mispredict_rate: float
    taken_rate: float
    code_footprint: int
    data_footprint_lines: int
    fit_length: int
    window_sizes: tuple[int, ...]

    def to_dict(self) -> dict:
        """JSON-friendly form (used by ``repro trace-info --extract``)."""
        s = self.statistics
        return {
            "length": s.length,
            "mix": {cls.name.lower(): frac for cls, frac in s.mix.items()},
            "mean_latency": s.mean_latency,
            "branch_fraction": s.branch_fraction,
            "load_fraction": s.load_fraction,
            "store_fraction": s.store_fraction,
            "mean_dependence_distance": s.mean_dependence_distance,
            "alpha": self.alpha,
            "beta": self.beta,
            "r_squared": self.r_squared,
            "mispredict_rate": self.mispredict_rate,
            "taken_rate": self.taken_rate,
            "code_footprint": self.code_footprint,
            "data_footprint_lines": self.data_footprint_lines,
            "fit_length": self.fit_length,
            "window_sizes": list(self.window_sizes),
        }


def extract_model_inputs(
    source,
    latency_table: LatencyTable | None = None,
    *,
    histogram_bins: int = 64,
    max_fit_length: int = 30_000,
    window_sizes: tuple[int, ...] | None = None,
) -> ModelInputs:
    """Measure first-order model inputs from a trace or chunk stream.

    ``source`` is a :class:`~repro.trace.trace.Trace` or any iterable of
    trace chunks (e.g. a :class:`~repro.trace.chunks.TraceChunkStream`,
    synthetic or ingested).  One pass over the chunks feeds the
    streaming statistics, a baseline gShare predictor, and the footprint
    sets; the IW power-law fit additionally materializes a prefix of at
    most ``max_fit_length`` instructions (window scheduling is not
    streamable).  Works identically for ``synthetic:`` and ``ingest:``
    workloads — this is tentpole glue that lets ``repro report`` and the
    figure experiments consume foreign traces unchanged.
    """
    from repro.branch.gshare import GShare
    from repro.window.iw_simulator import DEFAULT_WINDOW_SIZES, measure_iw_curve
    from repro.window.powerlaw import fit_curve

    if window_sizes is None:
        window_sizes = DEFAULT_WINDOW_SIZES
    chunks = [source] if isinstance(source, Trace) else source
    analyzer = StreamingTraceAnalyzer(latency_table, histogram_bins)
    predictor = GShare()
    branch_code = int(OpClass.BRANCH)
    taken_count = 0
    branch_count = 0
    pcs: set[int] = set()
    lines: set[int] = set()
    prefix: list[Trace] = []
    prefix_len = 0
    for chunk in chunks:
        analyzer.update(chunk)
        pcs.update(np.unique(chunk.pc).tolist())
        mem = chunk.loads | chunk.stores
        if np.any(mem):
            lines.update(np.unique(chunk.addr[mem] >> 6).tolist())
        is_branch = chunk.opclass == branch_code
        predictor.observe_batch(chunk.pc[is_branch], chunk.taken[is_branch])
        branch_count += int(is_branch.sum())
        taken_count += int(chunk.taken[is_branch].sum())
        if prefix_len < max_fit_length:
            prefix.append(chunk[: max_fit_length - prefix_len])
            prefix_len += len(prefix[-1])
    stats = analyzer.finalize()
    if len(prefix) == 1:
        fit_trace = prefix[0]
    else:
        from repro.trace.vectorgen import concat_traces

        fit_trace = concat_traces(prefix, name="fit-prefix")
    try:
        fit = fit_curve(measure_iw_curve(fit_trace, window_sizes,
                                         latency_table))
        alpha, beta, r2 = fit.alpha, fit.beta, fit.r_squared
    except ValueError:
        alpha = beta = r2 = float("nan")
    if branch_count:
        mispredict = float(predictor.stats.misprediction_rate)
        taken_rate = taken_count / branch_count
    else:
        mispredict = 0.0
        taken_rate = 0.0
    return ModelInputs(
        statistics=stats,
        alpha=alpha,
        beta=beta,
        r_squared=r2,
        mispredict_rate=mispredict,
        taken_rate=taken_rate,
        code_footprint=len(pcs),
        data_footprint_lines=len(lines),
        fit_length=prefix_len,
        window_sizes=tuple(int(w) for w in window_sizes),
    )


def event_distances(event_indices: np.ndarray) -> np.ndarray:
    """Distances (in dynamic instructions) between consecutive events.

    ``event_indices`` are sorted trace indices at which some event (e.g.
    a long data-cache miss) occurred.  The result has one entry per
    consecutive pair.  The paper measures exactly this for long misses:
    "We measure the distances between long data cache misses" (§4.3).
    """
    idx = np.asarray(event_indices, dtype=np.int64)
    if idx.ndim != 1:
        raise ValueError("event indices must be one-dimensional")
    if np.any(np.diff(idx) < 0):
        raise ValueError("event indices must be sorted")
    return np.diff(idx)


def group_size_distribution(
    event_indices: np.ndarray, window: int
) -> np.ndarray:
    """The f_LDM(i) distribution of paper Eq. 8.

    Events are greedily grouped: an event joins the current group when it
    falls within ``window`` dynamic instructions of the *first* event of
    the group (the ROB-anchored view of §4.3 — overlap happens when a
    second miss occurs within ``rob_size`` instructions of the first).
    Returns an array ``f`` where ``f[i-1]`` is the probability that an
    event belongs to a group of size ``i``; ``sum(i * count_i) == len(events)``.
    """
    idx = np.asarray(event_indices, dtype=np.int64)
    if window <= 0:
        raise ValueError("window must be positive")
    if idx.size == 0:
        return np.zeros(0, dtype=float)
    sizes: list[int] = []
    anchor = idx[0]
    current = 1
    for k in idx[1:]:
        if k - anchor < window:
            current += 1
        else:
            sizes.append(current)
            anchor = k
            current = 1
    sizes.append(current)
    max_size = max(sizes)
    counts = np.bincount(np.array(sizes), minlength=max_size + 1)[1:]
    weighted = counts * np.arange(1, max_size + 1)
    return weighted / weighted.sum()
