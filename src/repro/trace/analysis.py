"""Trace-level statistics.

The paper's model parameters come from "simple trace-driven simulations"
and "instruction trace analysis" (§1.2, §4).  This module provides the
pure trace-analysis half: instruction mix, mix-weighted mean latency,
dependence-distance distributions, and inter-event distance utilities
reused by the miss-event collector (e.g. the long-miss group-size
distribution f_LDM of Eq. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.isa.latency import LatencyTable
from repro.isa.opclass import OpClass
from repro.trace.trace import Trace


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of one trace.

    Attributes:
        length: dynamic instruction count.
        mix: dynamic opclass frequencies.
        mean_latency: mix-weighted mean functional-unit latency (the
            "Avg. Lat." column of paper Table 1, before any short-miss
            adjustment).
        branch_fraction: fraction of conditional branches.
        load_fraction / store_fraction: memory-op fractions.
        mean_dependence_distance: mean producer->consumer distance over
            present register source operands.
        dependence_distance_histogram: counts of distances 1..len(hist);
            distances beyond the histogram length are clamped into the
            last bucket.
    """

    length: int
    mix: Mapping[OpClass, float]
    mean_latency: float
    branch_fraction: float
    load_fraction: float
    store_fraction: float
    mean_dependence_distance: float
    dependence_distance_histogram: np.ndarray

    @property
    def instructions_per_branch(self) -> float:
        """Mean number of instructions between conditional branches."""
        if self.branch_fraction == 0:
            return float("inf")
        return 1.0 / self.branch_fraction


def analyze_trace(
    trace: Trace,
    latency_table: LatencyTable | None = None,
    histogram_bins: int = 64,
) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for ``trace``."""
    if len(trace) == 0:
        raise ValueError("cannot analyze an empty trace")
    table = latency_table or LatencyTable()
    mix = trace.instruction_mix()
    deps = trace.dependences()
    distances = deps.distances()
    if distances.size:
        mean_dist = float(distances.mean())
        clipped = np.minimum(distances, histogram_bins)
        hist = np.bincount(clipped, minlength=histogram_bins + 1)[1:]
    else:
        mean_dist = float("inf")
        hist = np.zeros(histogram_bins, dtype=np.int64)
    return TraceStatistics(
        length=len(trace),
        mix=mix,
        mean_latency=table.mean_latency(mix),
        branch_fraction=float(trace.branches.mean()),
        load_fraction=float(trace.loads.mean()),
        store_fraction=float(trace.stores.mean()),
        mean_dependence_distance=mean_dist,
        dependence_distance_histogram=hist,
    )


class StreamingTraceAnalyzer:
    """Chunk-at-a-time :func:`analyze_trace` with O(chunk) peak memory.

    Feed every chunk of a stream (in order) through :meth:`update`, then
    :meth:`finalize`.  Produces exactly the statistics
    :func:`analyze_trace` computes on the concatenated trace: the
    internal :class:`~repro.trace.trace.StreamingRenamer` carries the
    register producer map across chunk boundaries, so dependence
    distances that span chunks are counted identically.
    """

    def __init__(self, latency_table: LatencyTable | None = None,
                 histogram_bins: int = 64) -> None:
        from repro.trace.trace import StreamingRenamer

        self._table = latency_table or LatencyTable()
        self._bins = histogram_bins
        self._renamer = StreamingRenamer()
        self._n = 0
        self._class_counts = np.zeros(len(OpClass), dtype=np.int64)
        self._dist_sum = 0
        self._dist_count = 0
        self._hist = np.zeros(histogram_bins + 1, dtype=np.int64)

    def update(self, chunk: Trace) -> None:
        """Fold one chunk into the running statistics."""
        base = self._n
        deps = self._renamer.rename_chunk(chunk)
        idx = np.arange(base, base + len(chunk), dtype=np.int64)
        for dep in (deps.dep1, deps.dep2):
            present = dep >= 0
            d = idx[present] - dep[present]
            self._dist_sum += int(d.sum())
            self._dist_count += int(d.size)
            self._hist += np.bincount(
                np.minimum(d, self._bins), minlength=self._bins + 1
            )
        self._class_counts += np.bincount(
            chunk.opclass.astype(np.int64), minlength=len(OpClass)
        )
        self._n += len(chunk)

    def finalize(self) -> TraceStatistics:
        """The statistics of everything folded in so far."""
        n = self._n
        if n == 0:
            raise ValueError("cannot analyze an empty stream")
        counts = self._class_counts
        mix = {
            OpClass(c): counts[c] / n
            for c in range(len(OpClass)) if counts[c]
        }
        if self._dist_count:
            mean_dist = self._dist_sum / self._dist_count
        else:
            mean_dist = float("inf")
        return TraceStatistics(
            length=n,
            mix=mix,
            mean_latency=self._table.mean_latency(mix),
            branch_fraction=float(counts[int(OpClass.BRANCH)] / n),
            load_fraction=float(counts[int(OpClass.LOAD)] / n),
            store_fraction=float(counts[int(OpClass.STORE)] / n),
            mean_dependence_distance=mean_dist,
            dependence_distance_histogram=self._hist[1:].copy(),
        )


def event_distances(event_indices: np.ndarray) -> np.ndarray:
    """Distances (in dynamic instructions) between consecutive events.

    ``event_indices`` are sorted trace indices at which some event (e.g.
    a long data-cache miss) occurred.  The result has one entry per
    consecutive pair.  The paper measures exactly this for long misses:
    "We measure the distances between long data cache misses" (§4.3).
    """
    idx = np.asarray(event_indices, dtype=np.int64)
    if idx.ndim != 1:
        raise ValueError("event indices must be one-dimensional")
    if np.any(np.diff(idx) < 0):
        raise ValueError("event indices must be sorted")
    return np.diff(idx)


def group_size_distribution(
    event_indices: np.ndarray, window: int
) -> np.ndarray:
    """The f_LDM(i) distribution of paper Eq. 8.

    Events are greedily grouped: an event joins the current group when it
    falls within ``window`` dynamic instructions of the *first* event of
    the group (the ROB-anchored view of §4.3 — overlap happens when a
    second miss occurs within ``rob_size`` instructions of the first).
    Returns an array ``f`` where ``f[i-1]`` is the probability that an
    event belongs to a group of size ``i``; ``sum(i * count_i) == len(events)``.
    """
    idx = np.asarray(event_indices, dtype=np.int64)
    if window <= 0:
        raise ValueError("window must be positive")
    if idx.size == 0:
        return np.zeros(0, dtype=float)
    sizes: list[int] = []
    anchor = idx[0]
    current = 1
    for k in idx[1:]:
        if k - anchor < window:
            current += 1
        else:
            sizes.append(current)
            anchor = k
            current = 1
    sizes.append(current)
    max_size = max(sizes)
    counts = np.bincount(np.array(sizes), minlength=max_size + 1)[1:]
    weighted = counts * np.arange(1, max_size + 1)
    return weighted / weighted.sum()
