"""Chunked, vectorized synthetic-trace generation.

Byte-identical re-implementation of
:class:`repro.trace.synthetic.SyntheticTraceGenerator` that emits a
trace as a *stream of fixed-size column chunks* instead of one
whole-trace materialization, and replaces the per-instruction Python
loop with numpy span kernels.

Equivalence strategy
--------------------
The original generator interleaves scalar ``numpy.random.Generator``
draws in a data-dependent order, so naive batching changes every value.
Instead we split the problem (see :mod:`repro.trace._tape`):

1. the static program skeleton and the initial opclass pool draw use the
   *real* generator, exactly like the original;
2. from that point the raw PCG64 uint64 stream (the "tape") is generated
   at C speed, and the original's draw sequence is *decoded* from it:

   - a **scalar core** (:class:`_ScalarCore`) replays the walk
     draw-for-draw via :class:`~repro.trace._tape.Tape`.  It is exact
     for every profile and every state, and serves as the warmup
     stepper, the rare-path fallback and the differential oracle;
   - a **fast span decoder** (:class:`_FastCore`) precomputes, for a
     window of tape, every *hypothetical* draw outcome (uniform values,
     ziggurat accept/reject, geometric values, Lemire halves) as numpy
     arrays, walks the block skeleton in a lean Python loop that only
     tracks the tape cursor, then materializes all columns with
     vectorized gathers.  Rare events the vectorized tables cannot
     resolve (deep ziggurat rejection, dependence distances beyond the
     recency window, Lemire rejection entry on non-power-of-two bounds)
     are flagged in the tables and replayed through the scalar core.

Generation state between chunks lives in :class:`_GenState`, a small
tuple of integers and short lists, so streaming at any chunk size yields
byte-identical concatenations (chunk-size invariance) with O(chunk) peak
memory.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.isa.instruction import NO_REG
from repro.isa.opclass import OpClass
from repro.trace._tape import Tape
from repro.trace.profiles import BenchmarkProfile, get_profile
from repro.trace.synthetic import (
    HEAP_BASE,
    LIVE_IN_REGS,
    STACK_BASE,
    STREAM_BASE,
    STREAM_SPACING,
    STREAM_STAGGER,
    _KIND_JUMP,
    _KIND_LOOP,
    _LOCALITY_LINE,
    _RECENCY_DEPTH,
    _StaticProgram,
    _body_mix,
)
from repro.trace.trace import Trace

__all__ = ["ChunkedTraceGenerator", "DEFAULT_CHUNK_SIZE", "stream_chunks"]

#: default instructions per chunk; 2**16 keeps span working sets ~10 MB
DEFAULT_CHUNK_SIZE = 1 << 16

_OP_LOAD = int(OpClass.LOAD)
_OP_STORE = int(OpClass.STORE)
_OP_BRANCH = int(OpClass.BRANCH)
_OP_JUMP = int(OpClass.JUMP)


@dataclass
class _GenState:
    """Resumable generation state at an instruction boundary."""

    k: int = 0                 #: instructions emitted so far
    pos: int = 0               #: tape tokens consumed
    has32: bool = False        #: uint32 half-cache present
    cached: int = 0            #: cached uint32 half value
    allocs: int = 0            #: destination registers allocated so far
    pool_base: int = 0         #: tape offset of the current opclass pool
    pool_i: int = 0            #: draws consumed from the current pool
    block: int = 0             #: current static block index
    slot: int = 0              #: next body slot within the current block
    stream_pos: list[int] | None = None
    ring: list[int] | None = None          #: last <=16 heap miss lines
    loop_counters: list[int] | None = None
    started: bool = False      #: first-block draw consumed


class _Session:
    """Shared static context for one (profile, length, seed) generation."""

    def __init__(self, profile: BenchmarkProfile, num_regs: int,
                 length: int, seed: int | None) -> None:
        if num_regs <= LIVE_IN_REGS + 1:
            raise ValueError(f"num_regs must exceed {LIVE_IN_REGS + 1}")
        if length <= 0:
            raise ValueError("trace length must be positive")
        self.profile = profile
        self.n = length
        self.num_writable = num_regs - LIVE_IN_REGS
        self.recent_cap = 4 * self.num_writable

        rng = np.random.default_rng(profile.seed if seed is None else seed)
        self.program = _StaticProgram(profile, rng)
        self.blocks = self.program.blocks
        classes, probs = _body_mix(profile)
        self.body_classes = classes.tolist()
        self.body_classes_np = np.asarray(classes, dtype=np.int8)
        cdf = probs.cumsum()
        cdf /= cdf[-1]
        self.body_cdf = cdf            #: numpy, for vectorized pool decode
        self.body_cdf_list = cdf.tolist()

        #: tape origin: generator state right before the pool draw
        self.state0 = rng.bit_generator.state

        total = profile.stack_frac + profile.stream_frac + profile.heap_frac
        self.cum_stack = profile.stack_frac / total
        self.cum_stream = self.cum_stack + profile.stream_frac / total
        self.stack_excl = max(4, profile.stack_bytes) // 4
        self.num_lines = max(1, profile.heap_bytes // _LOCALITY_LINE)
        self.geom_p = 1.0 / profile.dep_mean_distance
        self.frac_live_in = profile.frac_live_in
        self.frac_two_sources = profile.frac_two_sources
        self.heap_locality = profile.heap_locality
        self.num_streams = profile.num_streams
        self.stream_stride = profile.stream_stride
        self.stream_bytes = profile.stream_bytes
        self.has_heap = profile.heap_frac > 0

    # -- tape access ---------------------------------------------------

    def tokens(self, pos: int, count: int) -> np.ndarray:
        """``count`` tape tokens starting ``pos`` tokens past the origin."""
        bg = np.random.PCG64()
        bg.state = self.state0
        if pos:
            bg.advance(pos)
        gen = np.random.Generator(bg)
        return gen.integers(0, 2 ** 64, dtype=np.uint64, size=count)

    def initial_state(self) -> _GenState:
        """State after the pool draw and the entry-block draw."""
        st = _GenState(
            stream_pos=[0] * self.num_streams,
            ring=[],
            loop_counters=[0] * len(self.blocks),
        )
        # the skeleton draws may leave an unconsumed uint32 half in the
        # generator; the walk's first bounded draw picks it up
        st.has32 = bool(self.state0["has_uint32"])
        st.cached = int(self.state0["uinteger"])
        # rng.choice(body_classes, size=n, p=body_probs) consumes exactly
        # n doubles; the pool itself is decoded lazily from those tokens
        st.pool_base = 0
        st.pool_i = 0
        st.pos = self.n
        # entry block: rng.integers(0, len(program))
        tape = Tape(self.tokens(st.pos, 4), 0, st.has32, st.cached)
        st.block = tape.integers(len(self.blocks))
        st.pos += tape.pos
        st.has32, st.cached = tape.has32, tape.cached
        st.slot = 0
        st.started = True
        return st

    def pool_slice(self, st: _GenState, count: int) -> list[int]:
        """The next ``count`` pool opclasses (pure function of the tape).

        Callers must ensure the slice does not exhaust the pool
        (``pool_i + count < n``); exhaustion triggers an *eager* refill
        in the original generator, which the walk replays explicitly.
        """
        if st.pool_i + count >= self.n:
            raise RuntimeError("pool_slice across a refill boundary")
        toks = self.tokens(st.pool_base + st.pool_i, count)
        u = (toks >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)
        idx = np.searchsorted(self.body_cdf, u, side="right")
        st.pool_i += count
        arr = np.asarray(self.body_classes, dtype=np.int8)
        return arr[idx].tolist()

    def pool_peek(self, st: _GenState, count: int) -> np.ndarray:
        """Like :meth:`pool_slice` but non-mutating, clamped to stop
        short of the refill boundary, returned as an int8 array."""
        count = min(count, self.n - 1 - st.pool_i)
        if count <= 0:
            return np.empty(0, dtype=np.int8)
        toks = self.tokens(st.pool_base + st.pool_i, count)
        u = (toks >> np.uint64(11)).astype(np.float64) * (2.0 ** -53)
        idx = np.searchsorted(self.body_cdf, u, side="right")
        return self.body_classes_np[idx]

    def pool_class_at(self, pos: int) -> int:
        """Decode a single pool opclass at absolute tape offset ``pos``."""
        tok = int(self.tokens(pos, 1)[0])
        u = (tok >> 11) * (2.0 ** -53)
        return self.body_classes[bisect_right(self.body_cdf_list, u)]

    def is_warm(self, st: _GenState) -> bool:
        """Fast-decoder preconditions: the register recency window is
        full (every dependence distance <= cap resolves arithmetically)
        and, when the profile has heap traffic, the heap recency ring
        holds its full 16 lines."""
        return (st.allocs >= self.recent_cap
                and (not self.has_heap or len(st.ring) >= _RECENCY_DEPTH))


class _Columns:
    """Append-oriented column buffers for one chunk.

    The scalar core appends per-instruction to plain Python lists; the
    fast decoder lands whole numpy column blocks via
    :meth:`append_arrays`.  Both interleave freely — list segments are
    flushed into array parts in order.
    """

    __slots__ = ("pc", "opclass", "dst", "src1", "src2", "addr", "taken",
                 "target", "_parts", "_parts_n")

    def __init__(self) -> None:
        self.pc: list[int] = []
        self.opclass: list[int] = []
        self.dst: list[int] = []
        self.src1: list[int] = []
        self.src2: list[int] = []
        self.addr: list[int] = []
        self.taken: list[bool] = []
        self.target: list[int] = []
        self._parts: list[tuple[np.ndarray, ...]] = []
        self._parts_n = 0

    def __len__(self) -> int:
        return self._parts_n + len(self.pc)

    def _flush(self) -> None:
        if not self.pc:
            return
        self._parts.append((
            np.array(self.pc, dtype=np.int64),
            np.array(self.opclass, dtype=np.int8),
            np.array(self.dst, dtype=np.int16),
            np.array(self.src1, dtype=np.int16),
            np.array(self.src2, dtype=np.int16),
            np.array(self.addr, dtype=np.int64),
            np.array(self.taken, dtype=np.bool_),
            np.array(self.target, dtype=np.int64),
        ))
        self._parts_n += len(self.pc)
        for lst in (self.pc, self.opclass, self.dst, self.src1, self.src2,
                    self.addr, self.taken, self.target):
            lst.clear()

    def append_arrays(self, pc, opclass, dst, src1, src2, addr, taken,
                      target) -> None:
        """Append one decoded block of columns (from the fast path)."""
        self._flush()
        self._parts.append((pc, opclass, dst, src1, src2, addr, taken,
                            target))
        self._parts_n += len(pc)

    def to_trace(self, name: str) -> Trace:
        self._flush()
        if len(self._parts) == 1:
            return Trace(*self._parts[0], name=name)
        cols = [np.concatenate([p[i] for p in self._parts])
                if self._parts else np.empty(0)
                for i in range(8)]
        return Trace(*cols, name=name)


class _ScalarCore:
    """Exact draw-for-draw replay of the original walk over the tape.

    Used for the warmup prefix (while the recency window is filling),
    for spans the fast decoder flags as exceptional, and as the
    fallback engine for arbitrary profiles.  A window of tape is kept
    locally and extended on demand so memory stays O(window).
    """

    _WINDOW = 1 << 15

    def __init__(self, session: _Session) -> None:
        self.s = session

    # -- tape window ---------------------------------------------------

    def _tape_at(self, st: _GenState) -> tuple[Tape, int]:
        base = st.pos
        tape = Tape(self.s.tokens(base, self._WINDOW), 0, st.has32, st.cached)
        return tape, base

    def _extend(self, tape: Tape, base: int) -> None:
        more = self.s.tokens(base + len(tape.tokens), self._WINDOW)
        tape.tokens.extend(more.tolist())

    # -- draw helpers --------------------------------------------------

    def _pick_source(self, tape: Tape, st: _GenState) -> int:
        s = self.s
        recent_len = min(st.allocs, s.recent_cap)
        if recent_len == 0 or tape.random() < s.frac_live_in:
            return tape.integers(LIVE_IN_REGS)
        j = tape.geometric(s.geom_p)
        if j > recent_len:
            return tape.integers(LIVE_IN_REGS)
        return LIVE_IN_REGS + (st.allocs - j) % s.num_writable

    def _allocate_dst(self, st: _GenState) -> int:
        reg = LIVE_IN_REGS + st.allocs % self.s.num_writable
        st.allocs += 1
        return reg

    def _next_address(self, tape: Tape, st: _GenState) -> int:
        s = self.s
        u = tape.random()
        if u < s.cum_stack:
            return STACK_BASE + tape.integers(s.stack_excl) * 4
        if u < s.cum_stream:
            stream = tape.integers(s.num_streams)
            addr = (STREAM_BASE + stream * (STREAM_SPACING + STREAM_STAGGER)
                    + st.stream_pos[stream])
            st.stream_pos[stream] = (
                st.stream_pos[stream] + s.stream_stride) % s.stream_bytes
            return addr
        ring = st.ring
        if ring and tape.random() < s.heap_locality:
            line = ring[tape.integers(len(ring))]
        else:
            line = tape.integers(s.num_lines)
            ring.append(line)
            if len(ring) > _RECENCY_DEPTH:
                del ring[0]
        off = tape.integers(_LOCALITY_LINE // 4) * 4
        return HEAP_BASE + line * _LOCALITY_LINE + off

    def _emit_body(self, tape: Tape, st: _GenState, cols: _Columns,
                   cls: int, block) -> None:
        """Emit one body instruction (slow path used near pool refills)."""
        s = self.s
        pc = block.addr + 4 * st.slot
        if cls == _OP_LOAD:
            src1 = self._pick_source(tape, st)
            dst = self._allocate_dst(st)
            addr = self._next_address(tape, st)
            src2 = NO_REG
        elif cls == _OP_STORE:
            src1 = self._pick_source(tape, st)
            src2 = self._pick_source(tape, st)
            addr = self._next_address(tape, st)
            dst = NO_REG
        else:
            src1 = self._pick_source(tape, st)
            if tape.random() < s.frac_two_sources:
                src2 = self._pick_source(tape, st)
            else:
                src2 = NO_REG
            dst = self._allocate_dst(st)
            addr = 0
        cols.pc.append(pc)
        cols.opclass.append(cls)
        cols.dst.append(dst)
        cols.src1.append(src1)
        cols.src2.append(src2)
        cols.addr.append(addr)
        cols.taken.append(False)
        cols.target.append(0)
        st.k += 1
        st.slot += 1

    # -- the walk ------------------------------------------------------

    def run(self, st: _GenState, count: int, cols: _Columns,
            stop=None) -> None:
        """Emit up to ``count`` instructions into ``cols``; advances
        ``st`` to the exact boundary.  ``stop(st)`` is polled at block
        boundaries and may end the span early (used to hand over to the
        fast decoder as soon as its preconditions hold)."""
        s = self.s
        n = s.n
        blocks = s.blocks
        st_k_limit = min(st.k + count, n)
        tape, base = self._tape_at(st)
        margin = self._WINDOW - 512

        while st.k < st_k_limit:
            if tape.pos > margin:
                # re-window instead of growing without bound
                st.pos = base + tape.pos
                st.has32, st.cached = tape.has32, tape.cached
                tape, base = self._tape_at(st)
                margin = self._WINDOW - 512
            block = blocks[st.block]
            body = block.size - 1
            if st.slot < body:
                take = min(body - st.slot, st_k_limit - st.k)
                if st.pool_i + take >= s.n:
                    # pool exhaustion: the original refills *eagerly*
                    # (right after reading the class, before that same
                    # instruction's operand draws), consuming n tape
                    # tokens mid-instruction — replay one at a time
                    for _ in range(take):
                        cls = s.pool_class_at(st.pool_base + st.pool_i)
                        st.pool_i += 1
                        if st.pool_i >= s.n:
                            while len(tape.tokens) < tape.pos + s.n + 64:
                                self._extend(tape, base)
                            st.pool_base = base + tape.pos
                            tape.pos += s.n
                            st.pool_i = 0
                        self._emit_body(tape, st, cols, cls, block)
                    classes = []
                else:
                    classes = s.pool_slice(st, take)
                for cls in classes:
                    pc = block.addr + 4 * st.slot
                    if cls == _OP_LOAD:
                        src1 = self._pick_source(tape, st)
                        dst = self._allocate_dst(st)
                        addr = self._next_address(tape, st)
                        src2 = NO_REG
                    elif cls == _OP_STORE:
                        src1 = self._pick_source(tape, st)
                        src2 = self._pick_source(tape, st)
                        addr = self._next_address(tape, st)
                        dst = NO_REG
                    else:
                        src1 = self._pick_source(tape, st)
                        if tape.random() < s.frac_two_sources:
                            src2 = self._pick_source(tape, st)
                        else:
                            src2 = NO_REG
                        dst = self._allocate_dst(st)
                        addr = 0
                    cols.pc.append(pc)
                    cols.opclass.append(cls)
                    cols.dst.append(dst)
                    cols.src1.append(src1)
                    cols.src2.append(src2)
                    cols.addr.append(addr)
                    cols.taken.append(False)
                    cols.target.append(0)
                    st.k += 1
                    st.slot += 1
                    if tape.pos > margin:
                        st.pos = base + tape.pos
                        st.has32, st.cached = tape.has32, tape.cached
                        tape, base = self._tape_at(st)
                if st.k >= st_k_limit:
                    break
            # terminator
            if st.k >= n:
                break
            pc = block.terminator_pc
            if block.kind == _KIND_JUMP:
                opclass = _OP_JUMP
                src1 = NO_REG
                is_taken = True
                dyn_target = block.jump_targets[
                    tape.integers(len(block.jump_targets))]
            else:
                opclass = _OP_BRANCH
                src1 = self._pick_source(tape, st)
                if block.kind == _KIND_LOOP:
                    b = block.index
                    st.loop_counters[b] += 1
                    if st.loop_counters[b] < block.trip_count:
                        is_taken = True
                    else:
                        is_taken = False
                        st.loop_counters[b] = 0
                else:
                    is_taken = tape.random() < block.taken_prob
                dyn_target = block.target
            succ = dyn_target if is_taken else (block.index + 1) % len(blocks)
            next_block = blocks[succ]
            cols.pc.append(pc)
            cols.opclass.append(opclass)
            cols.dst.append(NO_REG)
            cols.src1.append(src1)
            cols.src2.append(NO_REG)
            cols.addr.append(0)
            cols.taken.append(is_taken)
            cols.target.append(next_block.addr if is_taken else 0)
            st.k += 1
            st.block = succ
            st.slot = 0
            if stop is not None and stop(st):
                break

        st.pos = base + tape.pos
        st.has32, st.cached = tape.has32, tape.cached


class ChunkedTraceGenerator:
    """Streaming, vectorized drop-in for ``SyntheticTraceGenerator``.

    ``generate`` returns the same :class:`Trace` the original produces,
    byte for byte; ``chunks`` yields it as successive column chunks with
    O(chunk) peak memory.
    """

    def __init__(self, profile: BenchmarkProfile, num_regs: int = 64) -> None:
        self.profile = profile
        self.num_regs = num_regs

    def chunks(self, length: int | None = None, seed: int | None = None,
               chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[Trace]:
        """Yield the trace as consecutive chunks of ``chunk_size``
        instructions (the last may be shorter)."""
        profile = self.profile
        n = profile.default_length if length is None else int(length)
        session = _Session(profile, self.num_regs, n, seed)
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        state = session.initial_state()
        scalar = _ScalarCore(session)
        fast = _fast_core_for(session)
        while state.k < n:
            cols = _Columns()
            want = min(chunk_size, n - state.k)
            while len(cols) < want:
                if fast is not None and session.is_warm(state):
                    fast.run(state, want - len(cols), cols)
                else:
                    # scalar warmup; hand over at the first block
                    # boundary where the fast preconditions hold
                    stop = session.is_warm if fast is not None else None
                    scalar.run(state, want - len(cols), cols, stop=stop)
            yield cols.to_trace(profile.name)

    def generate(self, length: int | None = None,
                 seed: int | None = None) -> Trace:
        """Whole-trace generation (concatenation of one stream)."""
        profile = self.profile
        n = profile.default_length if length is None else int(length)
        parts = list(self.chunks(length=n, seed=seed,
                                 chunk_size=max(n, 1)))
        if len(parts) == 1:
            return parts[0]
        return concat_traces(parts, name=profile.name)


def _fast_core_for(session: _Session):
    """The fast span decoder for a session, or None when its
    preconditions cannot hold (tiny traces, replica self-check failed)."""
    from repro.trace._fastcore import _FastCore

    if _FastCore.supports(session):
        return _FastCore(session)
    return None


def concat_traces(parts: list[Trace], name: str) -> Trace:
    """Concatenate column chunks into one materialized :class:`Trace`."""
    return Trace(
        pc=np.concatenate([p.pc for p in parts]),
        opclass=np.concatenate([p.opclass for p in parts]),
        dst=np.concatenate([p.dst for p in parts]),
        src1=np.concatenate([p.src1 for p in parts]),
        src2=np.concatenate([p.src2 for p in parts]),
        addr=np.concatenate([p.addr for p in parts]),
        taken=np.concatenate([p.taken for p in parts]),
        target=np.concatenate([p.target for p in parts]),
        name=name,
    )


def stream_chunks(benchmark: str, length: int | None = None,
                  seed: int | None = None,
                  chunk_size: int = DEFAULT_CHUNK_SIZE) -> Iterator[Trace]:
    """Stream a named benchmark's trace as column chunks."""
    gen = ChunkedTraceGenerator(get_profile(benchmark))
    return gen.chunks(length=length, seed=seed, chunk_size=chunk_size)
