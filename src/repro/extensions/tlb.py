"""TLB misses as an additional miss-event class (paper §7, new feature 4).

"Additional types of miss-events, TLB misses in particular.  When added,
these will act much like long data cache misses."

A small fully-associative LRU TLB is run over the trace's data references
(functional, like the cache collector).  Miss indices feed the same
Eq. 8 overlap machinery as long data-cache misses, and the resulting CPI
adder slots into Eq. 1 alongside the existing terms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.opclass import OpClass
from repro.trace.analysis import group_size_distribution
from repro.trace.trace import Trace


@dataclass(frozen=True)
class TLBConfig:
    """TLB geometry and miss cost.

    Attributes:
        entries: fully-associative entry count (typical D-TLBs: 64–512).
        page_bytes: page size (power of two).
        miss_penalty: page-walk cycles charged per miss.
    """

    entries: int = 64
    page_bytes: int = 4096
    miss_penalty: int = 30

    def __post_init__(self) -> None:
        if self.entries < 1:
            raise ValueError("TLB needs at least one entry")
        if self.page_bytes < 1 or self.page_bytes & (self.page_bytes - 1):
            raise ValueError("page size must be a positive power of two")
        if self.miss_penalty < 1:
            raise ValueError("miss penalty must be >= 1 cycle")


class TLB:
    """Fully-associative LRU translation buffer."""

    def __init__(self, config: TLBConfig | None = None):
        self.config = config or TLBConfig()
        self._pages: list[int] = []
        self.accesses = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """Translate ``addr``; returns True on hit."""
        self.accesses += 1
        page = addr // self.config.page_bytes
        try:
            self._pages.remove(page)
        except ValueError:
            self.misses += 1
            self._pages.insert(0, page)
            if len(self._pages) > self.config.entries:
                self._pages.pop()
            return False
        self._pages.insert(0, page)
        return True

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def flush(self) -> None:
        self._pages.clear()


@dataclass(frozen=True)
class TLBMissProfile:
    """Functional TLB measurement over one trace."""

    length: int
    accesses: int
    miss_indices: np.ndarray

    @property
    def miss_count(self) -> int:
        return len(self.miss_indices)

    @property
    def misses_per_instruction(self) -> float:
        return self.miss_count / self.length

    def overlap_factor(self, rob_size: int) -> float:
        """Eq. 8's Σ f(i)/i applied to TLB misses — they overlap within
        the ROB window exactly like long data-cache misses."""
        f = group_size_distribution(self.miss_indices, rob_size)
        if f.size == 0:
            return 1.0
        sizes = np.arange(1, f.size + 1)
        return float(np.sum(f / sizes))


def collect_tlb_misses(
    trace: Trace,
    config: TLBConfig | None = None,
    warmup_passes: int = 1,
) -> TLBMissProfile:
    """Run the data-reference stream through a TLB (with functional
    warming, like the cache collector)."""
    cfg = config or TLBConfig()
    tlb = TLB(cfg)
    mem_mask = trace.mask(OpClass.LOAD, OpClass.STORE)
    addrs = trace.addr[mem_mask].tolist()
    positions = np.flatnonzero(mem_mask).tolist()

    for _ in range(max(0, warmup_passes)):
        for addr in addrs:
            tlb.access(addr)
    tlb.accesses = 0
    tlb.misses = 0

    miss_indices = [
        k for k, addr in zip(positions, addrs) if not tlb.access(addr)
    ]
    return TLBMissProfile(
        length=len(trace),
        accesses=tlb.accesses,
        miss_indices=np.array(miss_indices, dtype=np.int64),
    )


def tlb_cpi(
    profile: TLBMissProfile,
    rob_size: int,
    config: TLBConfig | None = None,
) -> float:
    """The Eq. 1 adder for TLB misses: rate x penalty x overlap factor."""
    cfg = config or TLBConfig()
    return (
        profile.misses_per_instruction
        * cfg.miss_penalty
        * profile.overlap_factor(rob_size)
    )
