"""Limited functional units (paper §7, new feature 1).

The first-order machine assumes unbounded functional units; real
machines have a few of each kind.  The paper sketches the extension:
"we will have to collect instruction mix statistics … the mix can be
used to determine the number of units required to meet this performance.
Or, if the number of units is too small, we can generate a lower
saturation level than the maximum issue width."

With mix fraction ``m_c`` for class *c* and ``n_c`` units of the class's
kind, sustaining an aggregate issue rate *I* requires ``m_c * I`` issues
per cycle of kind *c*; a fully-pipelined unit sustains one issue per
cycle, an unpipelined unit of latency *L* one per *L* cycles.  The
binding constraint caps the sustainable rate at
``min_c  n_c * throughput_c / m_c`` — the *effective issue limit* this
module computes and clamps the IW characteristic with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.isa.latency import LatencyTable
from repro.isa.opclass import OpClass
from repro.window.characteristic import IWCharacteristic

#: which opclasses execute on which unit kind
UNIT_KINDS: Mapping[str, tuple[OpClass, ...]] = {
    "ialu": (OpClass.IALU, OpClass.NOP),
    "imul": (OpClass.IMUL, OpClass.IDIV),
    "fpu": (OpClass.FALU, OpClass.FMUL, OpClass.FDIV),
    "mem": (OpClass.LOAD, OpClass.STORE),
    "branch": (OpClass.BRANCH, OpClass.JUMP),
}


@dataclass(frozen=True)
class FunctionalUnitPool:
    """Unit counts per kind, with per-kind pipelining.

    Attributes:
        counts: number of units per kind (keys of :data:`UNIT_KINDS`).
        pipelined: kinds that accept a new operation every cycle; an
            unpipelined kind sustains ``1/latency`` operations per unit
            per cycle.
    """

    counts: Mapping[str, int]
    pipelined: frozenset[str] = frozenset(
        {"ialu", "fpu", "mem", "branch"}
    )

    def __post_init__(self) -> None:
        unknown = set(self.counts) - set(UNIT_KINDS)
        if unknown:
            raise ValueError(f"unknown unit kinds: {sorted(unknown)}")
        bad = {k: n for k, n in self.counts.items() if n < 1}
        if bad:
            raise ValueError(f"unit counts must be >= 1: {bad}")

    def throughput(self, kind: str, latencies: LatencyTable) -> float:
        """Sustainable operations per cycle for one ``kind``: count for
        pipelined kinds, count/mean-latency otherwise."""
        count = self.counts.get(kind)
        if count is None:
            return math.inf
        if kind in self.pipelined:
            return float(count)
        classes = UNIT_KINDS[kind]
        mean_lat = sum(latencies[c] for c in classes) / len(classes)
        return count / mean_lat

    @classmethod
    def generous(cls) -> "FunctionalUnitPool":
        """A pool that never binds (for differential studies)."""
        return cls(counts={k: 64 for k in UNIT_KINDS})


def effective_issue_limit(
    mix: Mapping[OpClass, float],
    pool: FunctionalUnitPool,
    latencies: LatencyTable | None = None,
) -> float:
    """The aggregate issue rate the pool can sustain for this mix:
    ``min over kinds of  throughput_kind / mix_kind``."""
    table = latencies or LatencyTable()
    total = sum(mix.values())
    if total <= 0:
        raise ValueError("instruction mix is empty")
    limit = math.inf
    for kind, classes in UNIT_KINDS.items():
        m = sum(mix.get(c, 0.0) for c in classes) / total
        if m <= 0:
            continue
        limit = min(limit, pool.throughput(kind, table) / m)
    return limit


def saturation_with_limited_units(
    characteristic: IWCharacteristic,
    mix: Mapping[OpClass, float],
    pool: FunctionalUnitPool,
    latencies: LatencyTable | None = None,
) -> IWCharacteristic:
    """Clamp the characteristic at the pool's effective issue limit.

    When the pool binds below the machine width, this realises the
    paper's "lower saturation level than the maximum issue width";
    otherwise the characteristic is returned with its original clamp.
    """
    fu_limit = effective_issue_limit(mix, pool, latencies)
    current = (
        characteristic.issue_width
        if characteristic.issue_width is not None
        else math.inf
    )
    new_limit = min(current, fu_limit)
    if math.isinf(new_limit):
        return characteristic
    # the characteristic clamp is an integer width in the base model;
    # preserve fractional FU limits by flooring conservatively but never
    # below one instruction per cycle
    return characteristic.with_issue_width(max(1, math.floor(new_limit)))
