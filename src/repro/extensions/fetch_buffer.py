"""Instruction fetch buffers (paper §7, new feature 2).

"These buffers immediately follow the instruction cache and can hide
some (or all) of the I-cache miss penalty."

While an I-miss is outstanding, the machine keeps issuing from the
instructions already buffered between the cache and the window.  A
buffer of *B* instructions drains at the steady-state issue rate *I*,
hiding ``B / I`` cycles of the miss delay; the remainder is exposed:

    exposed = max(0, ΔI − B / I_steady)

The module provides the hidden-cycles computation and a drop-in adjusted
I-cache CPI contribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.events import MissEventProfile


@dataclass(frozen=True)
class FetchBuffer:
    """A fetch buffer of ``entries`` instructions."""

    entries: int

    def __post_init__(self) -> None:
        if self.entries < 0:
            raise ValueError("fetch buffer size cannot be negative")

    def drain_cycles(self, steady_ipc: float) -> float:
        """Cycles the buffered instructions keep the window fed."""
        if steady_ipc <= 0:
            raise ValueError("steady-state IPC must be positive")
        return self.entries / steady_ipc

    def exposed_delay(self, miss_delay: float, steady_ipc: float) -> float:
        """The part of an I-miss delay the buffer cannot hide."""
        if miss_delay < 0:
            raise ValueError("miss delay cannot be negative")
        return max(0.0, miss_delay - self.drain_cycles(steady_ipc))


def hidden_miss_cycles(
    buffer: FetchBuffer, miss_delay: float, steady_ipc: float
) -> float:
    """Cycles of one I-miss hidden by the buffer (≤ miss_delay)."""
    return miss_delay - buffer.exposed_delay(miss_delay, steady_ipc)


def icache_cpi_with_buffer(
    profile: MissEventProfile,
    buffer: FetchBuffer,
    l2_latency: float,
    memory_latency: float,
    steady_ipc: float,
) -> float:
    """CPI_icachemiss with fetch-buffer hiding applied to both miss
    levels.  With a large enough buffer, short I-miss penalties vanish
    entirely — the paper's "some (or all)"."""
    short = buffer.exposed_delay(l2_latency, steady_ipc)
    long = buffer.exposed_delay(memory_latency, steady_ipc)
    return (
        profile.icache_short_per_instruction * short
        + profile.icache_long_per_instruction * long
    )
