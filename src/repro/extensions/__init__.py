"""Extensions: the paper's §7 future-work features, implemented.

The paper closes with a list of refinements and new features for the
first-order model.  This package implements the concrete ones:

* :mod:`branch_bursts` — "Modeling bursts of branch mispredictions …
  collect secondary branch misprediction statistics to better model
  bursty behavior": replaces the fixed midpoint policy with a
  measured-burst-size application of Eq. 3.
* :mod:`limited_fu` — "Limited numbers of functional units … the mix can
  be used to determine the number of units required … or generate a
  lower saturation level than the maximum issue width."
* :mod:`fetch_buffer` — "Instruction fetch buffers … can hide some (or
  all) of the I-cache miss penalty."
* :mod:`tlb` — "Additional types of miss-events, TLB misses in
  particular.  When added, these will act much like long data cache
  misses."
"""

from repro.extensions.branch_bursts import (
    BurstStatistics,
    measure_bursts,
    burst_aware_branch_cpi,
)
from repro.extensions.limited_fu import (
    FunctionalUnitPool,
    effective_issue_limit,
    saturation_with_limited_units,
)
from repro.extensions.fetch_buffer import FetchBuffer, hidden_miss_cycles
from repro.extensions.tlb import TLB, TLBConfig, collect_tlb_misses, tlb_cpi
from repro.extensions.extended_model import (
    ExtendedFirstOrderModel,
    ExtendedReport,
)

__all__ = [
    "BurstStatistics",
    "measure_bursts",
    "burst_aware_branch_cpi",
    "FunctionalUnitPool",
    "effective_issue_limit",
    "saturation_with_limited_units",
    "FetchBuffer",
    "hidden_miss_cycles",
    "TLB",
    "TLBConfig",
    "collect_tlb_misses",
    "tlb_cpi",
    "ExtendedFirstOrderModel",
    "ExtendedReport",
]
