"""The extended first-order model: all §7 features behind one API.

Composes the base Eq. 1 model with the implemented future-work features:

* burst-aware branch misprediction charging (secondary statistics),
* fetch-buffer hiding of I-cache miss delay,
* a TLB miss-event class modeled like long data-cache misses,
* functional-unit-pool saturation of the IW characteristic.

Every feature is optional; with all disabled the result equals the base
:class:`~repro.core.model.FirstOrderModel` exactly, which the tests
assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import ProcessorConfig
from repro.core.branch_penalty import BurstPolicy
from repro.core.model import FirstOrderModel, ModelReport
from repro.core.steady_state import build_characteristic
from repro.extensions.branch_bursts import burst_aware_branch_cpi
from repro.extensions.fetch_buffer import FetchBuffer, icache_cpi_with_buffer
from repro.extensions.limited_fu import (
    FunctionalUnitPool,
    saturation_with_limited_units,
)
from repro.extensions.tlb import TLBConfig, collect_tlb_misses, tlb_cpi
from repro.frontend.collector import CollectorConfig, MissEventCollector
from repro.frontend.events import MissEventProfile
from repro.trace.trace import Trace
from repro.window.characteristic import IWCharacteristic


@dataclass(frozen=True)
class ExtendedReport:
    """Base report plus the extension adders/substitutions."""

    base: ModelReport
    cpi_branch: float
    cpi_icache: float
    cpi_tlb: float

    @property
    def cpi(self) -> float:
        return (
            self.base.cpi_steady
            + self.cpi_branch
            + self.cpi_icache
            + self.base.cpi_dcache
            + self.cpi_tlb
        )

    @property
    def ipc(self) -> float:
        return 1.0 / self.cpi


@dataclass
class ExtendedFirstOrderModel:
    """Eq. 1 with the §7 extensions toggled individually.

    Attributes:
        config: the machine.
        burst_aware_branches: replace the fixed burst policy with
            measured secondary misprediction statistics.
        fetch_buffer: when set, hides part of every I-miss delay.
        tlb: when set, adds a TLB miss-event class.
        fu_pool: when set, clamps the IW characteristic at the pool's
            sustainable issue rate.
    """

    config: ProcessorConfig = field(default_factory=ProcessorConfig)
    branch_policy: BurstPolicy = BurstPolicy.MIDPOINT
    burst_aware_branches: bool = False
    fetch_buffer: FetchBuffer | None = None
    tlb: TLBConfig | None = None
    fu_pool: FunctionalUnitPool | None = None

    def evaluate_trace(self, trace: Trace) -> ExtendedReport:
        collector = MissEventCollector(
            CollectorConfig(
                hierarchy=self.config.hierarchy,
                predictor_factory=self.config.predictor_factory,
                ideal_predictor=self.config.ideal_predictor,
            )
        )
        profile = collector.collect(trace)
        characteristic = build_characteristic(trace, self.config, profile)
        return self.evaluate(trace, profile, characteristic)

    def evaluate(
        self,
        trace: Trace,
        profile: MissEventProfile,
        characteristic: IWCharacteristic,
    ) -> ExtendedReport:
        if self.fu_pool is not None:
            characteristic = saturation_with_limited_units(
                characteristic, profile.trace_stats.mix, self.fu_pool,
                self.config.latencies,
            )
        base_model = FirstOrderModel(self.config, self.branch_policy)
        base = base_model.evaluate(profile, characteristic)

        cpi_branch = base.cpi_branch
        if self.burst_aware_branches:
            cpi_branch = burst_aware_branch_cpi(
                profile, base_model.branch_model(characteristic)
            )

        cpi_icache = base.cpi_icache
        if self.fetch_buffer is not None:
            cpi_icache = icache_cpi_with_buffer(
                profile,
                self.fetch_buffer,
                self.config.hierarchy.l2_latency,
                self.config.hierarchy.memory_latency,
                base.steady_state_ipc,
            )

        cpi_tlb = 0.0
        if self.tlb is not None:
            tlb_profile = collect_tlb_misses(trace, self.tlb)
            cpi_tlb = tlb_cpi(tlb_profile, self.config.rob_size, self.tlb)

        return ExtendedReport(
            base=base,
            cpi_branch=cpi_branch,
            cpi_icache=cpi_icache,
            cpi_tlb=cpi_tlb,
        )
