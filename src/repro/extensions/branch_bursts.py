"""Burst-aware branch misprediction modeling (paper §7, refinement 3).

The baseline recipe charges every misprediction the midpoint of the
isolated (Eq. 2) and fully-clustered (Eq. 3, n→∞) extremes, which the
paper identifies as its gzip-sized error source: "Bursts of branch
mispredictions can have significantly less overall penalty than isolated
ones.  Here, we can collect secondary branch misprediction statistics to
better model bursty behavior."

This module collects exactly those statistics: mispredictions within a
*burst window* of each other (measured in dynamic instructions — within a
window the drain/refill bracket is shared) are grouped, and each burst of
size *n* is charged ``n*ΔP + (win_drain + ramp_up)`` per Eq. 3, i.e. one
drain/ramp bracket per burst instead of per misprediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.branch_penalty import BranchPenaltyModel
from repro.frontend.events import MissEventProfile
from repro.trace.analysis import group_size_distribution


@dataclass(frozen=True)
class BurstStatistics:
    """Secondary misprediction statistics for one workload.

    Attributes:
        window: dynamic-instruction window within which consecutive
            mispredictions share one drain/ramp bracket.
        distribution: ``distribution[i-1]`` = probability that a
            misprediction belongs to a burst of size ``i``.
    """

    window: int
    distribution: np.ndarray

    @property
    def mean_burst_size(self) -> float:
        if self.distribution.size == 0:
            return 1.0
        sizes = np.arange(1, self.distribution.size + 1)
        # distribution is per-event; convert to per-burst weights 1/i
        weights = self.distribution / sizes
        return float(1.0 / weights.sum()) if weights.sum() else 1.0

    def bracket_share(self) -> float:
        """Expected fraction of a full drain+ramp bracket charged per
        misprediction: Σ_i f(i)/i (one bracket per burst of i)."""
        if self.distribution.size == 0:
            return 1.0
        sizes = np.arange(1, self.distribution.size + 1)
        return float(np.sum(self.distribution / sizes))


def measure_bursts(
    profile: MissEventProfile, window: int | None = None
) -> BurstStatistics:
    """Group the profile's mispredictions into bursts.

    The default window is the mean number of instructions a drain +
    refill + ramp covers at the steady rate — mispredictions closer than
    that interact.  A fixed 64-instruction window is used when the
    profile cannot supply a better estimate; callers with a transient in
    hand should pass ``window`` explicitly.
    """
    win = 64 if window is None else int(window)
    if win < 1:
        raise ValueError("burst window must be >= 1")
    distribution = group_size_distribution(
        profile.misprediction_indices, win
    )
    return BurstStatistics(window=win, distribution=distribution)


def burst_aware_branch_cpi(
    profile: MissEventProfile,
    model: BranchPenaltyModel,
    window: int | None = None,
) -> float:
    """CPI_brmisp with measured burst statistics.

    Each misprediction pays ΔP; each *burst* additionally pays one
    drain + ramp bracket (Eq. 3 applied per measured burst size):

        penalty/event = ΔP + (win_drain + ramp_up) * Σ_i f(i)/i
    """
    stats = measure_bursts(profile, window)
    bracket = model.transient.drain.penalty + model.transient.ramp.penalty
    per_event = model.pipeline_depth + bracket * stats.bracket_share()
    return profile.mispredictions_per_instruction * per_event
