"""Transient machinery: window drain and issue ramp-up on the IW curve.

The penalties of paper §4 are built from two primitives, both walks along
the IW characteristic (the paper generated them "using Excel", Figure 8):

* **Drain** — fetch has stopped; each cycle the window issues
  ``I(W)`` instructions and shrinks, so the issue rate slides down the
  curve until the window is empty.  The *drain penalty* is the extra time
  this takes compared with issuing the same instructions at the
  steady-state rate.

* **Ramp-up** — the window starts (nearly) empty and dispatch refills it
  at the machine width *i* while issue drains it at ``I(W)`` — the
  "leaky bucket".  Occupancy rises until the issue rate reaches steady
  state; the *ramp-up penalty* is the instruction deficit accumulated on
  the way, expressed in steady-state cycles.

A useful identity: each ramp cycle loses ``i - I(W_t)`` instructions and
gains exactly that many window occupants, so the total deficit equals the
occupancy change ``W_ss - W_start`` and the ramp penalty is approximately
``(W_ss - W_start) / i`` — handy for sanity checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.window.characteristic import IWCharacteristic

#: window occupancy below which the window counts as drained (the last
#: fraction of an instruction is the mispredicted branch itself)
_DRAIN_FLOOR = 1.0

#: ramp-up is complete once the issue rate reaches this fraction of the
#: steady-state rate (exact convergence is asymptotic off-saturation)
_RAMP_FRACTION = 0.99

#: hard iteration cap; transients of any sane machine are far shorter
_MAX_CYCLES = 100_000


@dataclass(frozen=True)
class DrainResult:
    """Outcome of a window drain.

    Attributes:
        cycles: cycles from fetch stop until the window is drained (the
            mispredicted branch issues on the last of these).
        instructions: useful instructions issued while draining.
        penalty: extra cycles versus issuing the same instructions at the
            steady-state rate — the paper's ``win_drain``.
        rates: per-cycle issue rates (the falling edge of Figure 7/8).
        final_window: occupancy left when the drain stopped.
    """

    cycles: int
    instructions: float
    penalty: float
    rates: tuple[float, ...]
    final_window: float


@dataclass(frozen=True)
class RampResult:
    """Outcome of an issue ramp-up.

    Attributes:
        cycles: cycles from first dispatch until the issue rate reaches
            steady state.
        penalty: instruction deficit in steady-state cycles — the paper's
            ``ramp_up``.
        rates: per-cycle issue rates (the rising edge of Figure 7/8).
        final_window: occupancy when the ramp was declared complete.
    """

    cycles: int
    penalty: float
    rates: tuple[float, ...]
    final_window: float


def steady_state_occupancy(
    characteristic: IWCharacteristic, window_size: int
) -> float:
    """Window occupancy at the steady-state operating point.

    On the saturated part of the curve the machine only needs the
    occupancy at which the curve reaches the width limit; off saturation
    the whole window is needed.  (The physical occupancy cannot exceed
    the window size either way.)
    """
    if window_size < 1:
        raise ValueError("window size must be >= 1")
    sat = characteristic.saturation_window()
    return min(float(window_size), sat)


def drain_transient(
    characteristic: IWCharacteristic,
    start_window: float,
) -> DrainResult:
    """Walk the window down the IW curve until it is empty.

    ``start_window`` is the occupancy when fetch stops (usually
    :func:`steady_state_occupancy`).
    """
    if start_window <= 0:
        raise ValueError("start window must be positive")
    steady_rate = characteristic.issue_rate(start_window)
    w = float(start_window)
    rates: list[float] = []
    issued = 0.0
    cycles = 0
    while w >= _DRAIN_FLOOR and cycles < _MAX_CYCLES:
        rate = characteristic.issue_rate(w)
        rate = min(rate, w)
        rates.append(rate)
        issued += rate
        w -= rate
        cycles += 1
    penalty = cycles - issued / steady_rate
    return DrainResult(
        cycles=cycles,
        instructions=issued,
        penalty=penalty,
        rates=tuple(rates),
        final_window=w,
    )


def ramp_transient(
    characteristic: IWCharacteristic,
    dispatch_width: int,
    window_size: int,
    start_window: float = 0.0,
) -> RampResult:
    """Fill the leaky bucket: dispatch at ``dispatch_width`` per cycle,
    issue at ``I(W)``, until the issue rate reaches steady state.

    The steady-state rate is evaluated at
    :func:`steady_state_occupancy`; the ramp is complete when the issue
    rate reaches ``_RAMP_FRACTION`` of it (or the window fills).
    """
    if dispatch_width < 1:
        raise ValueError("dispatch width must be >= 1")
    w_ss = steady_state_occupancy(characteristic, window_size)
    steady_rate = characteristic.issue_rate(w_ss)
    target = _RAMP_FRACTION * steady_rate

    w = float(start_window)
    rates: list[float] = []
    deficit = 0.0
    cycles = 0
    while cycles < _MAX_CYCLES:
        # dispatch this cycle's group, then issue from the enlarged window
        w = min(w + dispatch_width, float(window_size))
        rate = min(characteristic.issue_rate(w), w)
        rates.append(rate)
        deficit += steady_rate - rate
        w -= rate
        cycles += 1
        if rate >= target or w >= window_size:
            break
    penalty = deficit / steady_rate
    return RampResult(
        cycles=cycles,
        penalty=penalty,
        rates=tuple(rates),
        final_window=w,
    )


@dataclass(frozen=True)
class BranchTransient:
    """The full Figure-8 transient for an isolated branch misprediction:
    drain, pipeline refill (ΔP dead cycles), then ramp-up."""

    drain: DrainResult
    pipeline_depth: int
    ramp: RampResult

    @property
    def total_penalty(self) -> float:
        """Eq. 2: win_drain + ΔP + ramp_up."""
        return self.drain.penalty + self.pipeline_depth + self.ramp.penalty

    def issue_rate_timeline(self) -> tuple[float, ...]:
        """Per-cycle issue rates across the whole transient: falling
        drain edge, ΔP cycles of silence, rising ramp edge (Figure 8)."""
        return (
            self.drain.rates
            + (0.0,) * self.pipeline_depth
            + self.ramp.rates
        )


def branch_transient(
    characteristic: IWCharacteristic,
    pipeline_depth: int,
    dispatch_width: int,
    window_size: int,
) -> BranchTransient:
    """Compute the isolated-branch-misprediction transient of Figure 8."""
    if pipeline_depth < 1:
        raise ValueError("pipeline depth must be >= 1")
    w0 = steady_state_occupancy(characteristic, window_size)
    drain = drain_transient(characteristic, w0)
    ramp = ramp_transient(characteristic, dispatch_width, window_size)
    return BranchTransient(drain=drain, pipeline_depth=pipeline_depth,
                           ramp=ramp)
