"""The first-order superscalar processor model — the paper's contribution.

Combines the IW characteristic (steady state), the three miss-event
penalty models (branch misprediction, instruction cache, long data-cache
miss with overlap) and the Eq. 1 additive composition, plus the §6
microarchitecture-trend analyses.
"""

from repro.core.transient import (
    DrainResult,
    RampResult,
    BranchTransient,
    drain_transient,
    ramp_transient,
    branch_transient,
    steady_state_occupancy,
)
from repro.core.branch_penalty import BranchPenaltyModel, BurstPolicy
from repro.core.icache_penalty import ICachePenaltyModel
from repro.core.dcache_penalty import DCachePenaltyModel
from repro.core.steady_state import (
    build_characteristic,
    steady_state_ipc,
    steady_state_cpi,
)
from repro.core.model import FirstOrderModel, ModelReport
from repro.core.stack import CPIStack, render_stacks, STACK_ORDER
from repro.core import trends

__all__ = [
    "DrainResult",
    "RampResult",
    "BranchTransient",
    "drain_transient",
    "ramp_transient",
    "branch_transient",
    "steady_state_occupancy",
    "BranchPenaltyModel",
    "BurstPolicy",
    "ICachePenaltyModel",
    "DCachePenaltyModel",
    "build_characteristic",
    "steady_state_ipc",
    "steady_state_cpi",
    "FirstOrderModel",
    "ModelReport",
    "CPIStack",
    "render_stacks",
    "STACK_ORDER",
    "trends",
]
