"""Steady-state performance (paper §3 / §5 step 1).

Builds the machine-specific IW characteristic for a workload: measure the
unit-latency IW curve by idealized trace simulation, fit the power law,
apply the Little's-law correction with the workload's effective mean
latency (short data-cache misses folded in), and clamp at the issue
width.  The steady-state CPI is then the reciprocal of the issue rate at
the machine's window size.
"""

from __future__ import annotations

from repro.config import ProcessorConfig
from repro.frontend.events import MissEventProfile
from repro.trace.trace import Trace
from repro.window.characteristic import IWCharacteristic
from repro.window.iw_simulator import DEFAULT_WINDOW_SIZES, measure_iw_curve
from repro.window.powerlaw import fit_curve


def build_characteristic(
    trace: Trace,
    config: ProcessorConfig,
    profile: MissEventProfile | None = None,
    window_sizes: tuple[int, ...] = DEFAULT_WINDOW_SIZES,
) -> IWCharacteristic:
    """Measure and fit the IW characteristic of ``trace`` for ``config``.

    ``profile`` supplies the short-miss statistics for the effective mean
    latency; without it the static mix latency is used (no short-miss
    correction).
    """
    curve = measure_iw_curve(trace, window_sizes)
    fit = fit_curve(curve)
    if profile is not None:
        latency = profile.effective_mean_latency(
            config.latencies, config.hierarchy.l2_latency
        )
    else:
        from repro.trace.analysis import analyze_trace

        latency = analyze_trace(trace, config.latencies).mean_latency
    return IWCharacteristic.from_fit(
        fit, latency=latency, issue_width=config.width
    )


def steady_state_ipc(
    characteristic: IWCharacteristic, config: ProcessorConfig
) -> float:
    """Sustained no-miss-event IPC at the machine's window size."""
    return characteristic.steady_state_ipc(config.window_size)


def steady_state_cpi(
    characteristic: IWCharacteristic, config: ProcessorConfig
) -> float:
    """CPI_steadystate of Eq. 1."""
    return characteristic.steady_state_cpi(config.window_size)
