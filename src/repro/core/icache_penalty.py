"""Instruction-cache miss penalty model (paper §4.2, Eqs. 4–5).

An isolated I-cache miss costs ``ΔI + ramp_up − win_drain`` (Eq. 4): the
pipeline keeps the window fed while the miss is outstanding, the drain
happens "for free" during the miss, and only the ramp-up is extra.
Because drain and ramp-up penalties nearly cancel, the paper draws two
conclusions this module encodes:

1. the penalty is *independent of the front-end pipeline depth*, and
2. the penalty per miss ≈ the miss delay, whether isolated or in a burst
   (Eq. 5 divides the already-small residue by the burst size).

The model's §5 recipe therefore charges ΔI (the L2 access delay, 8
cycles) per L1 instruction miss and ΔD (memory, 200 cycles) per L2
instruction miss; the exact Eq. 4 form is kept for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.transient import BranchTransient, branch_transient
from repro.window.characteristic import IWCharacteristic


@dataclass(frozen=True)
class ICachePenaltyModel:
    """Penalty-per-I-miss calculator.

    Attributes:
        miss_delay: ΔI — the fill delay of the missing level (the L2
            latency for L1 misses, the memory latency for L2 misses).
        transient: drain/ramp transient used by the exact Eq. 4 form.
    """

    miss_delay: float
    transient: BranchTransient

    @classmethod
    def build(
        cls,
        characteristic: IWCharacteristic,
        miss_delay: float,
        pipeline_depth: int,
        dispatch_width: int,
        window_size: int,
    ) -> "ICachePenaltyModel":
        if miss_delay <= 0:
            raise ValueError("miss delay must be positive")
        return cls(
            miss_delay=miss_delay,
            transient=branch_transient(
                characteristic, pipeline_depth, dispatch_width, window_size
            ),
        )

    @property
    def isolated_penalty_exact(self) -> float:
        """Eq. 4: ΔI + ramp_up − win_drain."""
        return (
            self.miss_delay
            + self.transient.ramp.penalty
            - self.transient.drain.penalty
        )

    def burst_penalty_exact(self, n: int) -> float:
        """Eq. 5: ΔI + (ramp_up − win_drain)/n."""
        if n < 1:
            raise ValueError("burst size must be >= 1")
        residue = self.transient.ramp.penalty - self.transient.drain.penalty
        return self.miss_delay + residue / n

    @property
    def penalty(self) -> float:
        """The §5 recipe: penalty ≈ miss delay (drain and ramp cancel)."""
        return self.miss_delay

    def cpi_contribution(self, misses_per_instruction: float,
                         exact: bool = False) -> float:
        """CPI contribution of this miss class (per Eq. 1)."""
        if misses_per_instruction < 0:
            raise ValueError("miss rate must be non-negative")
        per_miss = self.isolated_penalty_exact if exact else self.penalty
        return misses_per_instruction * per_miss
