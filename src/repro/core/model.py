"""The first-order superscalar processor model (paper Eq. 1, §5).

``CPI = CPI_steadystate + CPI_brmisp + CPI_icachemiss + CPI_dcachemiss``

The model's evaluation recipe follows §5 exactly:

1. steady-state IPC from the IW characteristic, mean latency and
   Little's law;
2. branch misprediction penalty from the drain/refill/ramp transient,
   taken as the midpoint between the isolated and fully-clustered
   extremes;
3. L1 instruction-miss penalty = ΔI, L2 instruction-miss penalty = ΔD;
4. long data-cache miss penalty = ΔD × the Eq. 8 overlap factor;
5. miss-event counts from functional trace-driven simulation;
6. the CPI adders summed per Eq. 1, with no compensation for branch /
   I-miss events overlapped by data misses (a second-order effect).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ProcessorConfig
from repro.core.branch_penalty import BranchPenaltyModel, BurstPolicy
from repro.core.dcache_penalty import DCachePenaltyModel
from repro.core.icache_penalty import ICachePenaltyModel
from repro.core.stack import CPIStack
from repro.core.steady_state import build_characteristic
from repro.frontend.collector import CollectorConfig, MissEventCollector
from repro.frontend.events import MissEventProfile
from repro.trace.trace import Trace
from repro.window.characteristic import IWCharacteristic


@dataclass(frozen=True)
class ModelReport:
    """Model output for one workload on one machine.

    CPI components follow Eq. 1, with the instruction-cache term split by
    missing level (as in the Figure 16 stack).
    """

    name: str
    config: ProcessorConfig
    characteristic: IWCharacteristic
    cpi_steady: float
    cpi_branch: float
    cpi_icache_l1: float
    cpi_icache_l2: float
    cpi_dcache: float
    branch_penalty_per_event: float
    dcache_penalty_per_miss: float
    overlap_factor: float

    @property
    def cpi_icache(self) -> float:
        """CPI_icachemiss of Eq. 1 (both miss levels)."""
        return self.cpi_icache_l1 + self.cpi_icache_l2

    @property
    def cpi(self) -> float:
        """Eq. 1 total."""
        return (
            self.cpi_steady + self.cpi_branch + self.cpi_icache
            + self.cpi_dcache
        )

    @property
    def ipc(self) -> float:
        return 1.0 / self.cpi

    @property
    def steady_state_ipc(self) -> float:
        return 1.0 / self.cpi_steady

    def stack(self) -> CPIStack:
        """Figure-16 style additive decomposition."""
        return CPIStack(
            name=self.name,
            ideal=self.cpi_steady,
            l1_icache=self.cpi_icache_l1,
            l2_icache=self.cpi_icache_l2,
            l2_dcache=self.cpi_dcache,
            branch=self.cpi_branch,
        )


class FirstOrderModel:
    """Evaluates Eq. 1 for miss-event profiles on a configured machine."""

    def __init__(
        self,
        config: ProcessorConfig | None = None,
        branch_policy: BurstPolicy = BurstPolicy.MIDPOINT,
    ):
        self.config = config or ProcessorConfig()
        self.branch_policy = branch_policy

    # -- sub-models --------------------------------------------------------

    def branch_model(
        self, characteristic: IWCharacteristic
    ) -> BranchPenaltyModel:
        cfg = self.config
        return BranchPenaltyModel.build(
            characteristic, cfg.pipeline_depth, cfg.width, cfg.window_size
        )

    def icache_model(
        self, characteristic: IWCharacteristic, miss_delay: float
    ) -> ICachePenaltyModel:
        cfg = self.config
        return ICachePenaltyModel.build(
            characteristic, miss_delay, cfg.pipeline_depth, cfg.width,
            cfg.window_size,
        )

    def dcache_model(self) -> DCachePenaltyModel:
        cfg = self.config
        return DCachePenaltyModel(
            miss_delay=cfg.hierarchy.memory_latency, rob_size=cfg.rob_size
        )

    # -- evaluation -----------------------------------------------------------

    def evaluate(
        self,
        profile: MissEventProfile,
        characteristic: IWCharacteristic,
    ) -> ModelReport:
        """Combine a measured miss-event profile with an IW characteristic
        into the Eq. 1 CPI estimate."""
        cfg = self.config
        n = profile.length

        cpi_steady = characteristic.steady_state_cpi(cfg.window_size)

        branch = self.branch_model(characteristic)
        branch_penalty = branch.penalty(self.branch_policy)
        cpi_branch = branch.cpi_contribution(
            profile.mispredictions_per_instruction, self.branch_policy
        )

        cpi_icache_l1 = (
            profile.icache_short_per_instruction * cfg.hierarchy.l2_latency
        )
        cpi_icache_l2 = (
            profile.icache_long_per_instruction * cfg.hierarchy.memory_latency
        )

        dcache = self.dcache_model()
        overlap = profile.overlap_factor(cfg.rob_size)
        dcache_penalty = dcache.penalty_from_profile(profile)
        cpi_dcache = dcache.cpi_contribution(profile)

        return ModelReport(
            name=profile.name,
            config=cfg,
            characteristic=characteristic,
            cpi_steady=cpi_steady,
            cpi_branch=cpi_branch,
            cpi_icache_l1=cpi_icache_l1,
            cpi_icache_l2=cpi_icache_l2,
            cpi_dcache=cpi_dcache,
            branch_penalty_per_event=branch_penalty,
            dcache_penalty_per_miss=dcache_penalty,
            overlap_factor=overlap,
        )

    def evaluate_trace(self, trace: Trace) -> ModelReport:
        """End-to-end: functional collection, IW fit, then Eq. 1."""
        collector = MissEventCollector(
            CollectorConfig(
                hierarchy=self.config.hierarchy,
                predictor_factory=self.config.predictor_factory,
                ideal_predictor=self.config.ideal_predictor,
            )
        )
        profile = collector.collect(trace)
        characteristic = build_characteristic(trace, self.config, profile)
        return self.evaluate(profile, characteristic)
