"""CPI stacks (paper Figure 16).

"Because delays independently add, we can build a 'stack model' of
performance" — each miss-event class contributes its own CPI slice on top
of the ideal (steady-state) CPI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

#: canonical component order, matching the paper's Figure 16 legend
STACK_ORDER = (
    "ideal",
    "l1_icache",
    "l2_icache",
    "l2_dcache",
    "branch",
)

_LABELS = {
    "ideal": "Ideal",
    "l1_icache": "L1 Icache misses",
    "l2_icache": "L2 Icache misses",
    "l2_dcache": "L2 Dcache misses",
    "branch": "Branch mispredictions",
}


@dataclass(frozen=True)
class CPIStack:
    """Additive CPI decomposition for one benchmark."""

    name: str
    ideal: float
    l1_icache: float
    l2_icache: float
    l2_dcache: float
    branch: float

    def __post_init__(self) -> None:
        for key in STACK_ORDER:
            if getattr(self, key) < 0:
                raise ValueError(f"negative CPI component {key!r}")

    @property
    def total(self) -> float:
        return sum(getattr(self, key) for key in STACK_ORDER)

    def component(self, key: str) -> float:
        if key not in STACK_ORDER:
            raise KeyError(f"unknown component {key!r}")
        return getattr(self, key)

    def fraction(self, key: str) -> float:
        """Share of total CPI contributed by ``key`` (the paper quotes
        e.g. 70% of mcf's CPI from long data-cache misses)."""
        total = self.total
        return self.component(key) / total if total > 0 else 0.0

    def as_rows(self) -> list[tuple[str, float]]:
        """(label, cpi) rows in Figure-16 order."""
        return [(_LABELS[key], getattr(self, key)) for key in STACK_ORDER]

    def render(self, bar_width: int = 50) -> str:
        """ASCII bar rendering of the stack."""
        total = self.total
        lines = [f"{self.name}: CPI {total:.3f}"]
        for label, value in self.as_rows():
            frac = value / total if total > 0 else 0.0
            bar = "#" * round(frac * bar_width)
            lines.append(f"  {label:22s} {value:6.3f} {bar}")
        return "\n".join(lines)


def render_stacks(stacks: Iterable[CPIStack], bar_width: int = 50) -> str:
    """Render several stacks, one after another."""
    return "\n".join(s.render(bar_width) for s in stacks)
