"""Microarchitecture trend analyses (paper §6).

Pure-model studies — no traces required.  Both use the canonical
square-law characteristic (alpha=1, beta=0.5) with branch statistics
assumed as in the paper: one instruction in five is a branch and 5% of
branches mispredict, giving 100 instructions between mispredictions.

* §6.1 — performance versus front-end pipeline depth (Figure 17): IPC
  falls with depth because the misprediction penalty grows by one cycle
  per stage; absolute performance (BIPS) first rises with clock frequency
  and then falls, with an optimum depth that *shrinks* as issue width
  grows.

* §6.2 — branch-prediction requirements of wider issue (Figures 18–19):
  the fraction of time spent issuing near the machine width between two
  mispredictions; maintaining that fraction when the width doubles
  requires the misprediction distance to roughly quadruple.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.branch_penalty import BranchPenaltyModel, BurstPolicy
from repro.window.characteristic import IWCharacteristic

#: paper §6 workload assumptions
BRANCH_FRACTION = 0.2
MISPREDICTION_RATE = 0.05

#: paper Figure 17b technology constants, from Sprangle & Carmean:
#: total front-end logic delay and per-stage flip-flop overhead
FRONT_END_LOGIC_PS = 8200.0
FLIP_FLOP_OVERHEAD_PS = 90.0


def _trend_characteristic(
    issue_width: int, latency: float = 1.0
) -> IWCharacteristic:
    """Square-law characteristic clamped at ``issue_width``."""
    return IWCharacteristic.square_law(latency=latency,
                                       issue_width=issue_width)


def _trend_window(characteristic: IWCharacteristic) -> int:
    """A window big enough to sit on the saturated part of the curve."""
    return max(2, math.ceil(characteristic.saturation_window() * 2))


@dataclass(frozen=True)
class DepthSweepPoint:
    """One (depth, width) sample of the §6.1 study."""

    pipeline_depth: int
    issue_width: int
    ipc: float
    clock_ghz: float
    bips: float


def mispredictions_per_instruction(
    branch_fraction: float = BRANCH_FRACTION,
    misprediction_rate: float = MISPREDICTION_RATE,
) -> float:
    """Mispredictions per instruction under the §6 assumptions (0.01)."""
    return branch_fraction * misprediction_rate


def clock_ghz(pipeline_depth: int,
              logic_ps: float = FRONT_END_LOGIC_PS,
              overhead_ps: float = FLIP_FLOP_OVERHEAD_PS) -> float:
    """Clock frequency for an n-stage front end:
    cycle time = logic/n + overhead (Figure 17b)."""
    if pipeline_depth < 1:
        raise ValueError("pipeline depth must be >= 1")
    cycle_ps = logic_ps / pipeline_depth + overhead_ps
    return 1000.0 / cycle_ps


def pipeline_depth_sweep(
    depths: tuple[int, ...],
    issue_widths: tuple[int, ...] = (2, 3, 4, 8),
    latency: float = 1.0,
    branch_fraction: float = BRANCH_FRACTION,
    misprediction_rate: float = MISPREDICTION_RATE,
    policy: BurstPolicy = BurstPolicy.ISOLATED,
) -> dict[int, list[DepthSweepPoint]]:
    """The §6.1 study: IPC and BIPS per (width, depth).

    Returns ``{issue_width: [DepthSweepPoint, ...]}`` in depth order.
    """
    misp_per_instr = mispredictions_per_instruction(
        branch_fraction, misprediction_rate
    )
    out: dict[int, list[DepthSweepPoint]] = {}
    for width in issue_widths:
        char = _trend_characteristic(width, latency)
        window = _trend_window(char)
        points: list[DepthSweepPoint] = []
        for depth in depths:
            model = BranchPenaltyModel.build(char, depth, width, window)
            cpi = (
                char.steady_state_cpi(window)
                + misp_per_instr * model.penalty(policy)
            )
            ipc = 1.0 / cpi
            ghz = clock_ghz(depth)
            points.append(
                DepthSweepPoint(
                    pipeline_depth=depth,
                    issue_width=width,
                    ipc=ipc,
                    clock_ghz=ghz,
                    bips=ipc * ghz,
                )
            )
        out[width] = points
    return out


def optimal_depth(points: list[DepthSweepPoint]) -> DepthSweepPoint:
    """The BIPS-maximising point of one width's sweep."""
    if not points:
        raise ValueError("empty sweep")
    return max(points, key=lambda p: p.bips)


# -- §6.2: issue-width study -------------------------------------------------


def inter_mispredict_timeline(
    issue_width: int,
    instructions_between: float,
    pipeline_depth: int = 5,
    latency: float = 1.0,
) -> list[float]:
    """Per-cycle issue rates between two mispredicted branches
    (Figure 19).

    The interval starts when the first misprediction is resolved: ΔP dead
    cycles while the pipeline refills, then the leaky-bucket ramp, capped
    when ``instructions_between`` useful instructions have issued (the
    next misprediction enters the window and the cycle repeats).
    """
    if instructions_between <= 0:
        raise ValueError("instruction distance must be positive")
    char = _trend_characteristic(issue_width, latency)
    window = _trend_window(char)
    rates: list[float] = [0.0] * pipeline_depth
    issued = 0.0
    w = 0.0
    while issued < instructions_between:
        w = min(w + issue_width, float(window))
        rate = min(char.issue_rate(w), w)
        rate = min(rate, instructions_between - issued)
        rates.append(rate)
        issued += rate
        w -= rate
    return rates


def fraction_near_max_issue(
    issue_width: int,
    instructions_between: float,
    pipeline_depth: int = 5,
    latency: float = 1.0,
    closeness: float = 0.125,
) -> float:
    """Fraction of cycles between two mispredictions spent issuing within
    ``closeness`` (12.5% in the paper) of the machine width.

    The interval is the Figure-19 timeline: it starts at misprediction
    resolution (pipeline refill, then ramp) and ends when the next
    mispredicted branch's instructions have issued.  The preceding window
    drain is excluded — its first cycles issue at full rate and would
    spuriously credit very short intervals with near-max time.
    """
    ramp_rates = inter_mispredict_timeline(
        issue_width, instructions_between, pipeline_depth, latency
    )
    threshold = (1.0 - closeness) * issue_width
    near = sum(1 for r in ramp_rates if r >= threshold)
    return near / len(ramp_rates)


def required_mispredict_distance(
    issue_width: int,
    target_fraction: float,
    pipeline_depth: int = 5,
    latency: float = 1.0,
    closeness: float = 0.125,
    max_distance: float = 10_000_000.0,
) -> float:
    """Smallest instructions-between-mispredictions achieving
    ``target_fraction`` of time near the max issue width (Figure 18),
    found by bisection."""
    if not 0 < target_fraction < 1:
        raise ValueError("target fraction must be in (0, 1)")

    def frac(n: float) -> float:
        return fraction_near_max_issue(
            issue_width, n, pipeline_depth, latency, closeness
        )

    lo, hi = 1.0, 2.0
    while frac(hi) < target_fraction:
        hi *= 2.0
        if hi > max_distance:
            raise ValueError(
                f"target fraction {target_fraction} unreachable within "
                f"{max_distance:.0f} instructions"
            )
    while hi - lo > 0.5:
        mid = 0.5 * (lo + hi)
        if frac(mid) >= target_fraction:
            hi = mid
        else:
            lo = mid
    return hi
