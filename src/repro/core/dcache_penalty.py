"""Long data-cache miss penalty model (paper §4.3, Eqs. 6–8).

Long misses (L2 misses) block retirement: the ROB fills, dispatch stalls
and issue runs dry.  An isolated miss costs
``ΔD − rob_fill − win_drain + ramp_up`` (Eq. 6); with drain and ramp-up
cancelling and the missing load typically old when it issues
(rob_fill ≈ 0), the paper models the isolated penalty as simply ΔD.

Overlap is what matters: two independent long misses within ``rob_size``
instructions of each other serve their delays concurrently, halving the
per-miss penalty regardless of their distance (Eq. 7).  In general a
group of *i* overlapping misses costs 1/i of the isolated penalty each,
so with f_LDM(i) the probability a miss belongs to a group of size *i*
(measured from the trace), the expected penalty per miss is
``isolated × Σ_i f_LDM(i)/i`` (Eq. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.frontend.events import MissEventProfile


@dataclass(frozen=True)
class DCachePenaltyModel:
    """Penalty-per-long-miss calculator.

    Attributes:
        miss_delay: ΔD, the memory access delay (baseline 200 cycles).
        rob_size: reorder-buffer capacity; defines the overlap window of
            Eq. 8.
        rob_fill: optional Eq. 6 correction — cycles needed to fill the
            ROB behind the missing load.  The paper's recipe uses 0 (the
            load is old when it issues); the exact form is kept for
            sensitivity analysis.
    """

    miss_delay: float
    rob_size: int
    rob_fill: float = 0.0

    def __post_init__(self) -> None:
        if self.miss_delay <= 0:
            raise ValueError("miss delay must be positive")
        if self.rob_size < 1:
            raise ValueError("rob size must be >= 1")
        if not 0 <= self.rob_fill <= self.miss_delay:
            raise ValueError("rob_fill must be within [0, miss_delay]")

    @property
    def isolated_penalty(self) -> float:
        """Eq. 6 with drain/ramp cancelled: ΔD − rob_fill."""
        return self.miss_delay - self.rob_fill

    def pair_penalty(self) -> float:
        """Eq. 7: two overlapping misses cost half each, independent of
        their spacing."""
        return self.isolated_penalty / 2.0

    def group_penalty(self, group_size: int) -> float:
        """Per-miss penalty inside an overlapping group of ``group_size``."""
        if group_size < 1:
            raise ValueError("group size must be >= 1")
        return self.isolated_penalty / group_size

    def expected_penalty(self, f_ldm: np.ndarray) -> float:
        """Eq. 8: isolated × Σ_i f_LDM(i)/i for a measured group-size
        distribution (``f_ldm[i-1]`` = probability of group size i)."""
        f = np.asarray(f_ldm, dtype=float)
        if f.size == 0:
            return self.isolated_penalty
        if f.min() < 0 or not np.isclose(f.sum(), 1.0, atol=1e-6):
            raise ValueError("f_LDM must be a probability distribution")
        sizes = np.arange(1, f.size + 1)
        return self.isolated_penalty * float(np.sum(f / sizes))

    def penalty_from_profile(self, profile: MissEventProfile) -> float:
        """Expected per-miss penalty using the profile's measured long-miss
        clustering."""
        return self.isolated_penalty * profile.overlap_factor(self.rob_size)

    def cpi_contribution(self, profile: MissEventProfile) -> float:
        """CPI_dcachemiss of Eq. 1."""
        return (
            profile.dcache_long_per_instruction
            * self.penalty_from_profile(profile)
        )
