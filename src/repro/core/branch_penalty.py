"""Branch-misprediction penalty model (paper §4.1, Eqs. 2–3).

An isolated misprediction costs ``win_drain + ΔP + ramp_up`` (Eq. 2); a
burst of *n* back-to-back mispredictions amortises the drain and ramp
across the burst, ``ΔP + (win_drain + ramp_up)/n`` (Eq. 3).  The paper's
headline evaluation uses the midpoint of the two extremes — "the average
of 5 and 10 cycles (i.e. 7.5 cycles)" for the baseline — which is the
default policy here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.transient import BranchTransient, branch_transient
from repro.window.characteristic import IWCharacteristic


class BurstPolicy(enum.Enum):
    """How to fold misprediction clustering into a single penalty."""

    ISOLATED = "isolated"    #: Eq. 2 — every misprediction stands alone
    CLUSTERED = "clustered"  #: Eq. 3 with n → ∞ — only ΔP per event
    MIDPOINT = "midpoint"    #: the paper's §5 recipe: mean of the extremes


@dataclass(frozen=True)
class BranchPenaltyModel:
    """Penalty-per-misprediction calculator for one machine.

    Attributes:
        transient: the drain/refill/ramp transient of the machine.
    """

    transient: BranchTransient

    @classmethod
    def build(
        cls,
        characteristic: IWCharacteristic,
        pipeline_depth: int,
        dispatch_width: int,
        window_size: int,
    ) -> "BranchPenaltyModel":
        return cls(
            transient=branch_transient(
                characteristic, pipeline_depth, dispatch_width, window_size
            )
        )

    @property
    def pipeline_depth(self) -> int:
        return self.transient.pipeline_depth

    @property
    def isolated_penalty(self) -> float:
        """Eq. 2: win_drain + ΔP + ramp_up."""
        return self.transient.total_penalty

    def burst_penalty(self, n: int) -> float:
        """Eq. 3: per-misprediction penalty inside a burst of ``n``
        consecutive mispredictions."""
        if n < 1:
            raise ValueError("burst size must be >= 1")
        drain_plus_ramp = (
            self.transient.drain.penalty + self.transient.ramp.penalty
        )
        return self.pipeline_depth + drain_plus_ramp / n

    def penalty(self, policy: BurstPolicy = BurstPolicy.MIDPOINT) -> float:
        """Effective penalty per misprediction under ``policy``."""
        if policy is BurstPolicy.ISOLATED:
            return self.isolated_penalty
        if policy is BurstPolicy.CLUSTERED:
            return float(self.pipeline_depth)
        return 0.5 * (self.isolated_penalty + self.pipeline_depth)

    def cpi_contribution(
        self,
        mispredictions_per_instruction: float,
        policy: BurstPolicy = BurstPolicy.MIDPOINT,
    ) -> float:
        """CPI_brmisp of Eq. 1."""
        if mispredictions_per_instruction < 0:
            raise ValueError("misprediction rate must be non-negative")
        return mispredictions_per_instruction * self.penalty(policy)
