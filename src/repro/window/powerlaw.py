"""Power-law fitting of IW curves (paper §3, Table 1, Figure 5).

"Because they have a Power-Law relationship, we fit the IW curves to the
line I = alpha * W ** beta" — a linear least-squares fit in log2-log2
space, exactly as the annotated fits of Figure 5
(``log2(I) = beta*log2(W) + log2(alpha)``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.window.iw_simulator import IWCurve


@dataclass(frozen=True)
class PowerLawFit:
    """I = alpha * W**beta with goodness-of-fit in log space."""

    alpha: float
    beta: float
    r_squared: float

    def ipc(self, window_size: float) -> float:
        """Predicted issue rate at ``window_size`` (unit latency,
        unbounded width)."""
        return self.alpha * window_size ** self.beta

    def window_for_ipc(self, ipc: float) -> float:
        """Window occupancy at which the fit predicts ``ipc``."""
        if ipc <= 0:
            return 0.0
        return (ipc / self.alpha) ** (1.0 / self.beta)

    def log2_line(self) -> tuple[float, float]:
        """(slope, intercept) of the log2-log2 line, as annotated in
        Figure 5."""
        return self.beta, float(np.log2(self.alpha))


def fit_power_law(
    window_sizes: np.ndarray, ipcs: np.ndarray
) -> PowerLawFit:
    """Least-squares power-law fit through measured (W, I) points."""
    w = np.asarray(window_sizes, dtype=float)
    i = np.asarray(ipcs, dtype=float)
    if w.shape != i.shape or w.size < 2:
        raise ValueError("need at least two matching (W, I) points")
    if np.any(w <= 0) or np.any(i <= 0):
        raise ValueError("window sizes and IPCs must be positive")
    x = np.log2(w)
    y = np.log2(i)
    beta, logalpha = np.polyfit(x, y, 1)
    predicted = beta * x + logalpha
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(alpha=float(2.0 ** logalpha), beta=float(beta),
                       r_squared=r2)


def fit_curve(
    curve: IWCurve,
    min_window: int = 2,
    max_window: int | None = None,
) -> PowerLawFit:
    """Fit a measured :class:`IWCurve`, optionally restricting the window
    range (the paper fits the pre-saturation region)."""
    ws = curve.window_sizes
    ipcs = curve.ipcs
    mask = ws >= min_window
    if max_window is not None:
        mask &= ws <= max_window
    if mask.sum() < 2:
        raise ValueError("window range leaves fewer than two points")
    return fit_power_law(ws[mask], ipcs[mask])
