"""The IW characteristic abstraction used throughout the model.

An :class:`IWCharacteristic` bundles the unit-latency power-law fit
(alpha, beta) with the two implementation adjustments of paper §3:

* **Little's law** — with mean instruction latency L, dependence chains
  are L times longer, so ``I_L(W) = I_1(W) / L``.
* **Issue-width saturation** — "we assume unlimited issue width behavior
  … until the issue rate reaches the maximum issue limit.  Then, as in
  Jouppi, we assume issue rate saturates at the maximum issue width."

The characteristic also answers the inverse question (window occupancy
for a given issue rate), which the transient machinery needs to walk the
curve during drains and ramp-ups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.window.powerlaw import PowerLawFit


@dataclass(frozen=True)
class IWCharacteristic:
    """I = min(issue_width, alpha * W**beta / latency).

    Attributes:
        alpha: power-law coefficient from the unit-latency fit.
        beta: power-law exponent from the unit-latency fit.
        latency: mean instruction latency L (>= 1); 1.0 reproduces the
            raw unit-latency curve.
        issue_width: saturation limit; ``None`` means unbounded.
    """

    alpha: float
    beta: float
    latency: float = 1.0
    issue_width: int | None = None

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if not 0 < self.beta <= 1:
            raise ValueError("beta must be in (0, 1]")
        if self.latency < 1:
            raise ValueError("mean latency must be >= 1 cycle")
        if self.issue_width is not None and self.issue_width < 1:
            raise ValueError("issue width must be >= 1")

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_fit(
        cls,
        fit: PowerLawFit,
        latency: float = 1.0,
        issue_width: int | None = None,
    ) -> "IWCharacteristic":
        """Build from a unit-latency power-law fit."""
        return cls(alpha=fit.alpha, beta=fit.beta, latency=latency,
                   issue_width=issue_width)

    @classmethod
    def square_law(
        cls, latency: float = 1.0, issue_width: int | None = None
    ) -> "IWCharacteristic":
        """The paper's canonical alpha=1, beta=0.5 square-law curve
        ("the average for SpecINT2000 benchmarks once non-unit latencies
        are accounted for", Figure 8)."""
        return cls(alpha=1.0, beta=0.5, latency=latency,
                   issue_width=issue_width)

    def with_latency(self, latency: float) -> "IWCharacteristic":
        return replace(self, latency=latency)

    def with_issue_width(self, issue_width: int | None) -> "IWCharacteristic":
        return replace(self, issue_width=issue_width)

    # -- the characteristic ----------------------------------------------

    def unit_issue_rate(self, window: float) -> float:
        """Unit-latency, unbounded-width issue rate alpha * W**beta."""
        if window <= 0:
            return 0.0
        return self.alpha * window ** self.beta

    def issue_rate(self, window: float) -> float:
        """Issue rate with Little's-law correction and width saturation."""
        rate = self.unit_issue_rate(window) / self.latency
        if self.issue_width is not None:
            return min(rate, float(self.issue_width))
        return rate

    def window_for_rate(self, rate: float) -> float:
        """Window occupancy at which the (unsaturated) curve sustains
        ``rate`` — the inverse characteristic."""
        if rate <= 0:
            return 0.0
        return (rate * self.latency / self.alpha) ** (1.0 / self.beta)

    # -- steady state ------------------------------------------------------

    def steady_state_ipc(self, window_size: int) -> float:
        """Sustained no-miss-event IPC of a machine whose issue window
        holds ``window_size`` instructions (paper §5 step 1)."""
        if window_size < 1:
            raise ValueError("window size must be >= 1")
        return self.issue_rate(float(window_size))

    def steady_state_cpi(self, window_size: int) -> float:
        """1 / steady-state IPC — the CPI_steadystate term of Eq. 1."""
        return 1.0 / self.steady_state_ipc(window_size)

    def saturation_window(self) -> float:
        """Smallest window occupancy at which the curve saturates at the
        issue-width limit (infinite when unbounded)."""
        if self.issue_width is None:
            return math.inf
        return self.window_for_rate(float(self.issue_width))

    def is_saturated(self, window_size: int) -> bool:
        """True when the machine runs in the flat part of the curve —
        the paper's preferred operating point ("we use a window size
        large enough so that the issue rate … is in the saturation part
        of the curve")."""
        return window_size >= self.saturation_window()
