"""IW-characteristic machinery (paper §3).

Measures issue-rate-vs-window-size curves by idealized trace-driven
simulation, fits them to the power law I = alpha * W**beta, and wraps the
fit plus the Little's-law and issue-width-saturation adjustments into the
:class:`IWCharacteristic` the rest of the model consumes.
"""

from repro.window.iw_simulator import (
    IWPoint,
    IWCurve,
    simulate_unbounded_issue,
    LimitedWidthIWSimulator,
    measure_iw_curve,
    DEFAULT_WINDOW_SIZES,
)
from repro.window.powerlaw import PowerLawFit, fit_power_law, fit_curve
from repro.window.characteristic import IWCharacteristic
from repro.window.littles_law import (
    window_residency,
    issue_rate_from_residency,
    latency_scaled_issue_rate,
)

__all__ = [
    "IWPoint",
    "IWCurve",
    "simulate_unbounded_issue",
    "LimitedWidthIWSimulator",
    "measure_iw_curve",
    "DEFAULT_WINDOW_SIZES",
    "PowerLawFit",
    "fit_power_law",
    "fit_curve",
    "IWCharacteristic",
    "window_residency",
    "issue_rate_from_residency",
    "latency_scaled_issue_rate",
]
