"""Little's-law latency correction (paper §3).

"If the average issue rate is I1 with a window size of W and unit
functional unit latencies, then the average time spent in the window by a
given instruction is T = W/I1 … If the average instruction latency is L,
then all dependence chains, weighted by latencies, are approximately L
times longer than for the unit latency case … so the issue rate with
average latency L can be easily derived as IL = I1/L."

The functions here are deliberately tiny — they exist so the derivation
is testable on its own and referenced by name from the documentation.
"""

from __future__ import annotations


def window_residency(window_size: float, issue_rate: float) -> float:
    """Mean cycles an instruction spends in the window: T = W / I."""
    if window_size <= 0 or issue_rate <= 0:
        raise ValueError("window size and issue rate must be positive")
    return window_size / issue_rate


def issue_rate_from_residency(window_size: float, residency: float) -> float:
    """Little's law rearranged: I = W / T."""
    if window_size <= 0 or residency <= 0:
        raise ValueError("window size and residency must be positive")
    return window_size / residency


def latency_scaled_issue_rate(unit_rate: float, mean_latency: float) -> float:
    """I_L = I_1 / L — the paper's non-unit-latency correction."""
    if mean_latency < 1:
        raise ValueError("mean latency must be >= 1")
    if unit_rate < 0:
        raise ValueError("issue rate must be non-negative")
    return unit_rate / mean_latency
