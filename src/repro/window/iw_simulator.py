"""Idealized issue-window simulation (paper §3).

The IW characteristic is measured exactly as the paper prescribes:
"perform idealized (no miss-events) trace-driven simulations with an
unlimited number of unit-latency functional units and unbounded issue
width.  The only thing that is limited is the issue window size."

Two simulators live here:

* :func:`simulate_unbounded_issue` — unbounded issue width.  Uses an
  incremental formulation instead of a cycle loop: with in-order dispatch,
  unbounded width and greedy (as-soon-as-ready) issue, instruction *k*
  dispatches one cycle after the W-th-largest issue time among its
  predecessors (that is when the window again holds fewer than W
  unissued instructions), and issues at
  ``max(dispatch_time, ready_time)``.  A size-W min-heap of the largest
  issue times makes the whole trace O(N log W).

* :class:`LimitedWidthIWSimulator` — per-cycle simulation with a maximum
  issue width and oldest-first priority, used for Figure 6 (the curves
  that follow the ideal power law and then saturate at the width limit).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.isa.latency import LatencyTable
from repro.trace.trace import Trace


@dataclass(frozen=True)
class IWPoint:
    """One measured point of the IW characteristic."""

    window_size: int
    ipc: float
    cycles: int
    instructions: int


def simulate_unbounded_issue(
    trace: Trace,
    window_size: int,
    latency_table: LatencyTable | None = None,
) -> IWPoint:
    """Issue rate with window ``window_size``, unbounded issue width and
    unbounded functional units.

    ``latency_table`` defaults to all-unit latencies (the
    implementation-independent curves of paper Figure 4); passing real
    latencies yields the non-unit-latency curve directly, which is used
    to validate the Little's-law correction ``I_L = I_1 / L``.
    """
    if window_size < 1:
        raise ValueError("window size must be >= 1")
    n = len(trace)
    if n == 0:
        raise ValueError("empty trace")
    table = latency_table or LatencyTable.unit()
    lat = trace.latencies(table).tolist()
    deps = trace.dependences()
    dep1 = deps.dep1.tolist()
    dep2 = deps.dep2.tolist()

    issue_time = [0] * n
    # min-heap of the `window_size` largest issue times seen so far
    heap: list[int] = []
    last_cycle = 0
    for k in range(n):
        if len(heap) < window_size:
            dispatch = 0
        else:
            dispatch = heap[0] + 1
        ready = 0
        d = dep1[k]
        if d >= 0:
            ready = issue_time[d] + lat[d]
        d = dep2[k]
        if d >= 0:
            t = issue_time[d] + lat[d]
            if t > ready:
                ready = t
        t = dispatch if dispatch > ready else ready
        issue_time[k] = t
        if t > last_cycle:
            last_cycle = t
        if len(heap) < window_size:
            heapq.heappush(heap, t)
        elif t > heap[0]:
            heapq.heapreplace(heap, t)

    cycles = last_cycle + 1
    return IWPoint(
        window_size=window_size, ipc=n / cycles, cycles=cycles, instructions=n
    )


class LimitedWidthIWSimulator:
    """Per-cycle idealized simulator with a maximum issue width.

    Oldest-first priority, unbounded functional units, no miss-events,
    in-order dispatch refilling the window each cycle.  This reproduces
    the Figure 6 behaviour: the curve follows the unbounded-width power
    law until the issue rate saturates at the width limit.
    """

    def __init__(
        self,
        window_size: int,
        issue_width: int | None = None,
        latency_table: LatencyTable | None = None,
    ):
        if window_size < 1:
            raise ValueError("window size must be >= 1")
        if issue_width is not None and issue_width < 1:
            raise ValueError("issue width must be >= 1")
        self.window_size = window_size
        self.issue_width = issue_width
        self.latency_table = latency_table or LatencyTable.unit()

    def run(self, trace: Trace) -> IWPoint:
        n = len(trace)
        if n == 0:
            raise ValueError("empty trace")
        lat = trace.latencies(self.latency_table).tolist()
        deps = trace.dependences()
        dep1 = deps.dep1.tolist()
        dep2 = deps.dep2.tolist()
        width = self.issue_width if self.issue_width is not None else n

        #: cycle at which each result is available; "not yet issued" must
        #: read as never-ready, hence the +inf sentinel
        inf = float("inf")
        complete = [inf] * n
        window: list[int] = []    # dispatched, un-issued, oldest first
        next_dispatch = 0
        issued_total = 0
        cycle = 0
        while issued_total < n:
            # dispatch up to the free space (unbounded dispatch width in
            # the idealized machine)
            space = self.window_size - len(window)
            while space > 0 and next_dispatch < n:
                window.append(next_dispatch)
                next_dispatch += 1
                space -= 1
            # oldest-first issue of ready instructions
            issued_now = 0
            remaining: list[int] = []
            for k in window:
                if issued_now >= width:
                    remaining.append(k)
                    continue
                d1, d2 = dep1[k], dep2[k]
                if (d1 < 0 or complete[d1] <= cycle) and (
                    d2 < 0 or complete[d2] <= cycle
                ):
                    complete[k] = cycle + lat[k]
                    issued_now += 1
                    issued_total += 1
                else:
                    remaining.append(k)
            window = remaining
            cycle += 1
        return IWPoint(
            window_size=self.window_size, ipc=n / cycle, cycles=cycle,
            instructions=n,
        )


#: default window sizes for measuring IW curves (powers of two, log-log fit)
DEFAULT_WINDOW_SIZES = (2, 4, 8, 16, 32, 64, 128)


def measure_iw_curve(
    trace: Trace,
    window_sizes: tuple[int, ...] = DEFAULT_WINDOW_SIZES,
    latency_table: LatencyTable | None = None,
    issue_width: int | None = None,
) -> "IWCurve":
    """Measure IW points for each window size.

    With ``issue_width=None`` the fast unbounded-width formulation is
    used; otherwise the per-cycle limited-width simulator.
    """
    points = []
    for w in window_sizes:
        if issue_width is None:
            points.append(simulate_unbounded_issue(trace, w, latency_table))
        else:
            sim = LimitedWidthIWSimulator(w, issue_width, latency_table)
            points.append(sim.run(trace))
    return IWCurve(name=trace.name, points=tuple(points))


@dataclass(frozen=True)
class IWCurve:
    """A measured IW characteristic: IPC as a function of window size."""

    name: str
    points: tuple[IWPoint, ...]

    @property
    def window_sizes(self) -> np.ndarray:
        return np.array([p.window_size for p in self.points], dtype=float)

    @property
    def ipcs(self) -> np.ndarray:
        return np.array([p.ipc for p in self.points], dtype=float)

    def ipc_at(self, window_size: int) -> float:
        for p in self.points:
            if p.window_size == window_size:
                return p.ipc
        raise KeyError(f"window size {window_size} was not measured")
