"""Cache geometry and hierarchy configuration.

Defaults reproduce the paper's baseline (§1.1): 4 KB 4-way L1 instruction
and data caches with 128-byte lines, a unified 512 KB 4-way L2 with
128-byte lines, an 8-cycle L2 access delay (the paper's ΔI for L1 misses)
and a 200-cycle memory delay (the paper's ΔD for long misses).
"""

from __future__ import annotations

from dataclasses import dataclass


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache."""

    size_bytes: int
    associativity: int
    line_bytes: int

    def __post_init__(self) -> None:
        for name in ("size_bytes", "associativity", "line_bytes"):
            v = getattr(self, name)
            if not _is_pow2(v):
                raise ValueError(f"{name} must be a positive power of two, got {v}")
        if self.size_bytes < self.associativity * self.line_bytes:
            raise ValueError(
                "cache smaller than one set "
                f"({self.size_bytes} < {self.associativity * self.line_bytes})"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    def set_index(self, addr: int) -> int:
        return (addr // self.line_bytes) % self.num_sets

    def tag(self, addr: int) -> int:
        return addr // (self.line_bytes * self.num_sets)

    def line_address(self, addr: int) -> int:
        return addr - (addr % self.line_bytes)


#: paper baseline geometries
L1I_BASELINE = CacheGeometry(size_bytes=4 * 1024, associativity=4, line_bytes=128)
L1D_BASELINE = CacheGeometry(size_bytes=4 * 1024, associativity=4, line_bytes=128)
L2_BASELINE = CacheGeometry(size_bytes=512 * 1024, associativity=4, line_bytes=128)


@dataclass(frozen=True)
class HierarchyConfig:
    """Two-level hierarchy: split L1s over a unified L2.

    Attributes:
        l2_latency: extra cycles to fetch from L2 on an L1 miss — the
            paper's ΔI and the short-miss load latency.
        memory_latency: extra cycles to fetch from memory on an L2 miss —
            the paper's ΔD (long-miss delay).
        ideal_icache / ideal_dcache: when True, the corresponding L1
            always hits (the paper's "everything ideal except ..."
            simulation configurations).
    """

    l1i: CacheGeometry = L1I_BASELINE
    l1d: CacheGeometry = L1D_BASELINE
    l2: CacheGeometry = L2_BASELINE
    l2_latency: int = 8
    memory_latency: int = 200
    ideal_icache: bool = False
    ideal_dcache: bool = False

    def __post_init__(self) -> None:
        if self.l2_latency < 1 or self.memory_latency < 1:
            raise ValueError("latencies must be >= 1 cycle")
        if self.memory_latency <= self.l2_latency:
            raise ValueError("memory latency must exceed L2 latency")

    def ideal(self) -> "HierarchyConfig":
        """Copy with both L1s made ideal."""
        return HierarchyConfig(
            l1i=self.l1i, l1d=self.l1d, l2=self.l2,
            l2_latency=self.l2_latency, memory_latency=self.memory_latency,
            ideal_icache=True, ideal_dcache=True,
        )

    def with_ideal(self, icache: bool | None = None,
                   dcache: bool | None = None) -> "HierarchyConfig":
        """Copy with the given ideal flags overridden."""
        return HierarchyConfig(
            l1i=self.l1i, l1d=self.l1d, l2=self.l2,
            l2_latency=self.l2_latency, memory_latency=self.memory_latency,
            ideal_icache=self.ideal_icache if icache is None else icache,
            ideal_dcache=self.ideal_dcache if dcache is None else dcache,
        )
