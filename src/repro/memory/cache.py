"""Set-associative cache with true-LRU replacement.

This is the functional cache the paper's "simple trace driven simulations
of caches" (§7) rely on: it models hit/miss state only — no timing, no
MSHRs, no bandwidth.  Timing consequences of misses are the business of
the analytical model and of the detailed simulator, both of which consume
this cache's hit/miss answers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.config import CacheGeometry


@dataclass
class CacheStats:
    """Access counters for one cache."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = 0
        self.misses = 0


class Cache:
    """One level of set-associative cache with LRU replacement.

    Each set is a list of tags ordered most-recently-used first; with the
    small associativities used here (4-way baseline) list operations are
    cheap and the ordering doubles as the LRU state.
    """

    def __init__(self, geometry: CacheGeometry, name: str = "cache"):
        self.geometry = geometry
        self.name = name
        self.stats = CacheStats()
        self._sets: list[list[int]] = [[] for _ in range(geometry.num_sets)]

    def access(self, addr: int) -> bool:
        """Reference ``addr``; returns True on hit.  Misses allocate
        (write-allocate for stores; the functional model does not
        distinguish reads from writes)."""
        self.stats.accesses += 1
        g = self.geometry
        tags = self._sets[g.set_index(addr)]
        tag = g.tag(addr)
        try:
            tags.remove(tag)
        except ValueError:
            self.stats.misses += 1
            tags.insert(0, tag)
            if len(tags) > g.associativity:
                tags.pop()
            return False
        tags.insert(0, tag)
        return True

    def probe(self, addr: int) -> bool:
        """Non-destructive lookup: True if ``addr`` is resident."""
        g = self.geometry
        return g.tag(addr) in self._sets[g.set_index(addr)]

    def touch(self, addr: int) -> None:
        """Install ``addr`` without counting an access (used to warm up)."""
        g = self.geometry
        tags = self._sets[g.set_index(addr)]
        tag = g.tag(addr)
        if tag in tags:
            tags.remove(tag)
        tags.insert(0, tag)
        if len(tags) > g.associativity:
            tags.pop()

    def flush(self) -> None:
        """Invalidate all lines (statistics are preserved)."""
        for s in self._sets:
            s.clear()

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:
        g = self.geometry
        return (
            f"Cache({self.name!r}, {g.size_bytes}B, {g.associativity}-way, "
            f"{g.line_bytes}B lines)"
        )
