"""Two-level cache hierarchy with the paper's miss taxonomy.

The first-order model classifies every reference into three outcomes
(§4.3): an L1 hit, a *short* miss (L1 miss that hits in the unified L2 —
modelled as a long-latency functional unit), or a *long* miss (L2 miss —
a retirement-blocking miss-event with delay ΔD).  Instruction fetches use
the same classification: a short instruction miss stalls fetch for ΔI
cycles, a long one for ΔD.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.memory.cache import Cache
from repro.memory.config import HierarchyConfig


class AccessOutcome(enum.Enum):
    """Where a reference was satisfied."""

    L1_HIT = "l1_hit"
    L2_HIT = "l2_hit"      #: short miss in the paper's terminology
    MEMORY = "memory"      #: long miss

    @property
    def is_short_miss(self) -> bool:
        return self is AccessOutcome.L2_HIT

    @property
    def is_long_miss(self) -> bool:
        return self is AccessOutcome.MEMORY


@dataclass
class HierarchyStats:
    """Per-stream outcome counters."""

    l1_hits: int = 0
    short_misses: int = 0
    long_misses: int = 0

    @property
    def accesses(self) -> int:
        return self.l1_hits + self.short_misses + self.long_misses

    def record(self, outcome: AccessOutcome) -> None:
        if outcome is AccessOutcome.L1_HIT:
            self.l1_hits += 1
        elif outcome is AccessOutcome.L2_HIT:
            self.short_misses += 1
        else:
            self.long_misses += 1


class CacheHierarchy:
    """Split L1I/L1D over a unified L2, per the paper's baseline.

    The hierarchy is purely functional; it reports outcomes and leaves all
    timing to its callers.  Ideal L1s (``config.ideal_icache`` /
    ``ideal_dcache``) always report :attr:`AccessOutcome.L1_HIT` without
    touching cache state, matching the paper's "everything ideal except…"
    configurations.

    ``shared_l2`` injects an externally-owned L2 :class:`Cache` instead of
    building a private one — the multi-programmed co-run substrate
    (:mod:`repro.corun`) gives each workload its own hierarchy (private
    L1s, private statistics) over one shared L2 object, so contention is
    modeled purely through cache state while every per-workload counter
    stays attributable.  The injected cache must match ``config.l2``'s
    geometry; its statistics aggregate across all sharers.
    """

    def __init__(self, config: HierarchyConfig | None = None,
                 shared_l2: Cache | None = None):
        self.config = config or HierarchyConfig()
        self.l1i = Cache(self.config.l1i, "L1I")
        self.l1d = Cache(self.config.l1d, "L1D")
        if shared_l2 is not None and shared_l2.geometry != self.config.l2:
            raise ValueError(
                f"shared L2 geometry {shared_l2.geometry} does not match "
                f"the hierarchy's l2 config {self.config.l2}"
            )
        self.l2 = shared_l2 if shared_l2 is not None else Cache(
            self.config.l2, "L2")
        #: whether :attr:`l2` is owned by someone else (co-run sharing)
        self.l2_shared = shared_l2 is not None
        self.istats = HierarchyStats()
        self.dstats = HierarchyStats()

    # -- lookups ----------------------------------------------------------

    def access_instruction(self, pc: int) -> AccessOutcome:
        """Instruction fetch of the line containing ``pc``."""
        if self.config.ideal_icache:
            self.istats.record(AccessOutcome.L1_HIT)
            return AccessOutcome.L1_HIT
        outcome = self._access(self.l1i, pc)
        self.istats.record(outcome)
        return outcome

    def access_data(self, addr: int) -> AccessOutcome:
        """Load/store reference to ``addr``."""
        if self.config.ideal_dcache:
            self.dstats.record(AccessOutcome.L1_HIT)
            return AccessOutcome.L1_HIT
        outcome = self._access(self.l1d, addr)
        self.dstats.record(outcome)
        return outcome

    def _access(self, l1: Cache, addr: int) -> AccessOutcome:
        if l1.access(addr):
            return AccessOutcome.L1_HIT
        if self.l2.access(addr):
            return AccessOutcome.L2_HIT
        return AccessOutcome.MEMORY

    # -- timing helpers -----------------------------------------------------

    def data_latency(self, outcome: AccessOutcome, l1_latency: int) -> int:
        """Total load-to-use latency for a data reference."""
        if outcome is AccessOutcome.L1_HIT:
            return l1_latency
        if outcome is AccessOutcome.L2_HIT:
            return l1_latency + self.config.l2_latency
        return l1_latency + self.config.memory_latency

    def fetch_stall(self, outcome: AccessOutcome) -> int:
        """Extra front-end stall cycles for an instruction fetch."""
        if outcome is AccessOutcome.L1_HIT:
            return 0
        if outcome is AccessOutcome.L2_HIT:
            return self.config.l2_latency
        return self.config.memory_latency

    def reset(self) -> None:
        """Invalidate all caches and zero all statistics."""
        for cache in (self.l1i, self.l1d, self.l2):
            cache.flush()
            cache.stats.reset()
        self.istats = HierarchyStats()
        self.dstats = HierarchyStats()
