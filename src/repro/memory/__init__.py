"""Cache hierarchy substrate: functional set-associative caches.

Provides the paper's baseline memory system — 4 KB 4-way split L1s and a
512 KB 4-way unified L2, 128-byte lines — with the short/long miss
classification the first-order model is built on.
"""

from repro.memory.cache import Cache, CacheStats
from repro.memory.config import (
    CacheGeometry,
    HierarchyConfig,
    L1I_BASELINE,
    L1D_BASELINE,
    L2_BASELINE,
)
from repro.memory.hierarchy import AccessOutcome, CacheHierarchy, HierarchyStats

__all__ = [
    "Cache",
    "CacheStats",
    "CacheGeometry",
    "HierarchyConfig",
    "L1I_BASELINE",
    "L1D_BASELINE",
    "L2_BASELINE",
    "AccessOutcome",
    "CacheHierarchy",
    "HierarchyStats",
]
