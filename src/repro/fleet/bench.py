"""``bench fleet``: routed throughput, key affinity, failover under fire.

The scenario is the fleet's reason to exist, compressed: a heavy-tail
request mix (a few hot keys asked again and again, a tail of cold
one-off keys) pushed through a router at two fleet sizes.  Hot keys are
warmed untimed first, so the timed batches measure steady-state shard
affinity — every hot repeat should land in some node's cache — while
the cold tail measures compute scaling.  A third, untimed chaos replay
SIGKILLs one node of the three mid-batch and must finish with zero
failed requests.

Every request carries a small fixed ``chaos.sleep`` service time, so
the workload is latency-bound, not CPU-bound: on a single-core host
(CI) three 1-worker nodes still genuinely serve ~3x the rps of one,
because sleeps overlap across node processes where compute cannot.
The sleep rides the spec's chaos param — part of the content key, so
every repeat is a legitimate cache hit of its own key.
"""

from __future__ import annotations

import json
import random
import threading
import time

#: fixed per-compute service time (seconds) — the latency the fleet hides
SERVICE_TIME_S = 0.08

#: hot keys x repeats each, plus distinct cold keys
HOT_KEYS = 6
HOT_REPEATS = 5
COLD_KEYS = 20


def _payload(length: int, seed: int) -> dict:
    from repro.service.client import _spec_payload

    return _spec_payload("model", {
        "benchmark": "gzip", "length": length, "seed": seed,
        "chaos": {"sleep": SERVICE_TIME_S}})


def _workload(length: int) -> list[dict]:
    """The deterministic mixed batch every fleet size replays."""
    requests = [_payload(length, seed)
                for seed in range(HOT_KEYS) for _ in range(HOT_REPEATS)]
    requests += [_payload(length, seed)
                 for seed in range(100, 100 + COLD_KEYS)]
    random.Random(0).shuffle(requests)
    return requests


def _drive(fleet, requests: list[dict], kill_index: int | None = None,
           kill_after: int = 0, clients: int = 8) -> dict:
    """Replay ``requests`` through ``fleet``'s router; with ``kill_index``
    set, SIGKILL that node once ``kill_after`` requests have completed —
    deterministically mid-batch, however fast the batch runs."""
    from concurrent.futures import ThreadPoolExecutor

    from repro.service import ServiceClient

    outcomes: list[tuple[bool, str, float]] = []
    lock = threading.Lock()
    kill_pending = kill_index is not None

    def one(params: dict) -> None:
        nonlocal kill_pending
        with ServiceClient(fleet.host, fleet.port, timeout=120) as client:
            start = time.perf_counter()
            response = client.request("model",
                                      json.loads(json.dumps(params)))
            elapsed = time.perf_counter() - start
        with lock:
            outcomes.append((bool(response.get("ok")),
                             (response.get("meta") or {}).get(
                                 "served_from", ""),
                             elapsed))
            fire = kill_pending and len(outcomes) >= kill_after
            if fire:
                kill_pending = False
        if fire:  # off-thread: the kill must not stall this client
            threading.Thread(target=fleet.kill_node, args=(kill_index,),
                             daemon=True).start()

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        list(pool.map(one, requests))
    wall = time.perf_counter() - start

    latencies = sorted(t for _, _, t in outcomes)

    def pct(q: float) -> float:
        return latencies[min(len(latencies) - 1,
                             round(q * (len(latencies) - 1)))]

    warm = sum(1 for ok, served, _ in outcomes
               if ok and served in ("cache", "peek", "inflight"))
    return {
        "requests": len(requests),
        "failed": sum(1 for ok, _, _ in outcomes if not ok),
        "seconds": wall,
        "rps": len(requests) / wall,
        "p50_ms": pct(0.50) * 1e3,
        "p99_ms": pct(0.99) * 1e3,
        "warm_hit_ratio": warm / len(requests),
    }


def _warm_hot_keys(fleet, length: int) -> None:
    """Compute each hot key once, untimed, onto its owning shard."""
    from repro.service import ServiceClient

    with ServiceClient(fleet.host, fleet.port, timeout=120) as client:
        for seed in range(HOT_KEYS):
            client.request("model", _payload(length, seed))


def bench_fleet(length: int, progress=None) -> dict:
    """One-node vs three-node routed fleets over the same mixed batch,
    then a chaos replay that loses a node to SIGKILL mid-run."""
    import tempfile

    from repro.fleet.nodes import LocalFleet

    requests = _workload(length)
    total = len(requests)

    if progress:
        progress("fleet: 1 node, mixed heavy-tail batch")
    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as base:
        with LocalFleet(1, base, workers=1, queue_limit=total) as fleet:
            _warm_hot_keys(fleet, length)
            one_node = _drive(fleet, requests)

    if progress:
        progress("fleet: 3 nodes, same batch, then SIGKILL one mid-replay")
    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as base:
        with LocalFleet(3, base, workers=1, queue_limit=total) as fleet:
            _warm_hot_keys(fleet, length)
            three_node = _drive(fleet, requests)
            # chaos replay on the now-warm fleet: a fifth of the way in,
            # in-flight requests are spread across all three nodes
            chaos = _drive(fleet, requests, kill_index=2,
                           kill_after=total // 5)
            status = fleet.router.fleet_status()

    return {
        "workload": {
            "hot_keys": HOT_KEYS, "hot_repeats": HOT_REPEATS,
            "cold_keys": COLD_KEYS,
            "distinct_keys": HOT_KEYS + COLD_KEYS,
            "service_time_ms": SERVICE_TIME_S * 1e3,
        },
        "one_node": one_node,
        "three_node": three_node,
        "rps_scaling": three_node["rps"] / one_node["rps"],
        "chaos": {
            "requests": chaos["requests"],
            "failed": chaos["failed"],
            "seconds": chaos["seconds"],
            "failover": status["counters"]["router.failover"],
            "survivors": status["healthy"],
        },
        "replicated": status["counters"]["router.replicated"],
        "peek_hits": status["counters"]["router.peek_hit"],
    }


__all__ = ["bench_fleet"]
