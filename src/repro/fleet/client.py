"""AsyncServiceClient — pooled, pipelined asyncio access to one node.

The blocking :class:`~repro.service.client.ServiceClient` is the right
tool for scripts; the router needs something it can drive from inside
an event loop with many requests in flight per node.  This client keeps
a small pool of TCP connections to one service, pipelines frames on
each (requests go out as they arrive; a per-connection reader task
demuxes responses to their waiting futures by request id), and
re-dials lazily after a connection drops.

Connection loss fails every request in flight on that connection with
:class:`ConnectionError` — the router turns that into failover, which
is safe because evaluations are idempotent by content key.
"""

from __future__ import annotations

import asyncio
import itertools

from repro.service import protocol


class _Connection:
    """One pipelined TCP connection: writer lock + id-keyed futures."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._write_lock = asyncio.Lock()
        self._pending: dict[str, asyncio.Future] = {}
        self._closed = False
        self._task = asyncio.ensure_future(self._read_loop())

    @property
    def alive(self) -> bool:
        return not self._closed

    @property
    def inflight(self) -> int:
        return len(self._pending)

    async def request(self, frame: dict, rid: str,
                      timeout: float | None) -> dict:
        if self._closed:
            raise ConnectionError("connection is closed")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        try:
            async with self._write_lock:
                self._writer.write(protocol.encode_frame(frame))
                await self._writer.drain()
            if timeout is not None:
                return await asyncio.wait_for(future, timeout)
            return await future
        finally:
            self._pending.pop(rid, None)

    async def _read_loop(self) -> None:
        error: BaseException = ConnectionError("connection closed")
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = protocol.decode_frame(line)
                future = self._pending.get(str(response.get("id", "")))
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionResetError, OSError, ValueError,
                protocol.ProtocolError) as exc:
            error = ConnectionError(f"connection lost: {exc}")
        except asyncio.CancelledError:
            error = ConnectionError("client closed")
        finally:
            self._closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()
            self._writer.close()

    async def close(self) -> None:
        self._task.cancel()
        try:
            await self._task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass


class AsyncServiceClient:
    """Pooled asyncio client for one service node.

    ``pool`` bounds the number of concurrent TCP connections; requests
    are pipelined onto the least-loaded live connection, so one slow
    compute does not head-of-line-block a cache hit (the server answers
    out of order and frames are demuxed by id).
    """

    def __init__(self, host: str, port: int, timeout: float | None = 120.0,
                 pool: int = 2):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.pool = max(1, int(pool))
        self._conns: list[_Connection] = []
        self._ids = itertools.count(1)
        self._dial_lock = asyncio.Lock()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def _connection(self) -> _Connection:
        self._conns = [c for c in self._conns if c.alive]
        if len(self._conns) < self.pool:
            async with self._dial_lock:
                self._conns = [c for c in self._conns if c.alive]
                if len(self._conns) < self.pool:
                    reader, writer = await asyncio.open_connection(
                        self.host, self.port,
                        limit=protocol.MAX_FRAME_BYTES)
                    self._conns.append(_Connection(reader, writer))
        return min(self._conns, key=lambda c: c.inflight)

    async def request(self, op: str, params: dict | None = None,
                      timeout: float | None = None,
                      trace: dict | None = None) -> dict:
        """Send one request; return the full response frame."""
        rid = str(next(self._ids))
        frame = protocol.make_request(op, params, id=rid,
                                      timeout=timeout, trace=trace)
        conn = await self._connection()
        deadline = timeout if timeout is not None else self.timeout
        return await conn.request(frame, rid, deadline)

    async def evaluate(self, op: str, params: dict | None = None,
                       timeout: float | None = None,
                       trace: dict | None = None) -> dict:
        """Send one request; return ``result`` or raise ServiceError."""
        from repro.service.client import ServiceError

        response = await self.request(op, params, timeout, trace)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(error.get("code", "internal"),
                               error.get("message", "unknown error"))
        return response["result"]

    async def ping(self) -> dict:
        return await self.evaluate("ping")

    async def close(self) -> None:
        conns, self._conns = self._conns, []
        for conn in conns:
            await conn.close()

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


__all__ = ["AsyncServiceClient"]
