"""repro.fleet — horizontal scaling for the evaluation service.

The PR-3 service is one asyncio process with one pool and one artifact
cache.  This package scales it out while keeping every answer
bit-identical to an in-process run:

* :mod:`repro.fleet.ring` — consistent hashing with virtual nodes,
  bounded-load placement and deterministic rebalance.  Requests shard
  by :meth:`repro.spec.RunSpec.content_key` (via the service's
  ``request_key``), so each node's cache stays hot for its shard.
* :mod:`repro.fleet.client` — :class:`AsyncServiceClient`, an asyncio
  client with connection pooling and request pipelining (many frames in
  flight per connection, demuxed by request id).
* :mod:`repro.fleet.router` — the front door (``repro route``): speaks
  the service's exact newline-JSON/HTTP protocol, peeks ring targets'
  caches before forwarding, replicates responses toward the key's
  owner, health-checks nodes and fails requests over when one dies
  mid-flight (safe — evaluations are idempotent by content key).
* :mod:`repro.fleet.nodes` — subprocess node management: spawn
  ``repro serve --port 0`` workers with isolated caches, parse their
  ready lines, and :class:`LocalFleet`, the all-in-one harness the
  bench, the CI smoke job and the failover tests drive.
* :mod:`repro.fleet.peers` — ``repro serve --peer``: a node-level
  remote cache-probe hook so even routerless nodes can serve keys a
  sibling already computed.
* :mod:`repro.fleet.bench` — the ``bench fleet`` scenario: heavy-tail
  request mix, hot-key skew, a mid-run node kill, rps/p50/p99/hit-ratio
  vs node count.

See docs/FLEET.md for topology, key-affinity and failover semantics.
"""

from repro.fleet.client import AsyncServiceClient
from repro.fleet.nodes import LocalFleet, NodeProc, spawn_node
from repro.fleet.ring import HashRing
from repro.fleet.router import BackgroundRouter, FleetRouter, route
from repro.spec.fleet import FleetSpec

__all__ = [
    "AsyncServiceClient",
    "BackgroundRouter",
    "FleetRouter",
    "FleetSpec",
    "HashRing",
    "LocalFleet",
    "NodeProc",
    "route",
    "spawn_node",
]
