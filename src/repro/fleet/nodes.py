"""Spawn and supervise worker-node processes for a local fleet.

A node is just ``repro serve --port 0 --node-id <id>`` with its own
``REPRO_CACHE_DIR`` — a full service process with scheduler, pool and a
*private* artifact cache, which is what makes cross-node peek and
replication observable (shared-cache nodes would trivially "hit").
``--port 0`` binds an ephemeral port; the spawner reads the actual
address back from the ready line, so N nodes never race for ports.

:class:`LocalFleet` composes the pieces into the harness the bench, the
CI smoke job and the failover tests drive: N spawned nodes behind an
in-process :class:`~repro.fleet.router.BackgroundRouter`, with a
``kill_node`` chaos switch (SIGKILL — the node gets no goodbye).
"""

from __future__ import annotations

import logging
import os
import re
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.spec.fleet import FleetSpec

_log = logging.getLogger(__name__)

#: the ready line ``repro serve`` prints once its socket is bound
READY_RE = re.compile(r"listening on (\S+?):(\d+)")


@dataclass
class NodeProc:
    """One spawned worker-node process."""

    node_id: str
    host: str
    port: int
    process: subprocess.Popen = field(repr=False)
    cache_dir: str

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL the node's whole process group — the machine-death
        the failover path handles.

        The group matters: the service's pool workers are forked
        children holding every inherited fd, including the *listening
        socket*.  Kill only the leader and the orphans keep the port
        open — connects still succeed and then hang, which turns a
        crisp connection-refused failover into a full request timeout.
        """
        if self.alive:
            self._signal_group(signal.SIGKILL)
            self.process.wait(timeout=10)

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful SIGINT (drain), escalating to a group SIGKILL."""
        if not self.alive:
            return
        self.process.send_signal(signal.SIGINT)
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self._signal_group(signal.SIGKILL)
            self.process.wait(timeout=10)

    def _signal_group(self, sig: int) -> None:
        try:
            os.killpg(self.process.pid, sig)  # own group: setsid at spawn
        except (ProcessLookupError, PermissionError):
            self.process.kill()


def _node_environment(cache_dir: str) -> dict:
    """The child environment: private cache, importable ``repro``."""
    import repro
    from repro.spec.env import process_environment

    env = process_environment()
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    src = str(Path(repro.__file__).parents[1])
    prior = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{prior}" if prior else src
    return env


def spawn_node(node_id: str, cache_dir: str, workers: int | None = 1,
               queue_limit: int = 64, host: str = "127.0.0.1",
               timeout: float = 60.0,
               extra_env: dict | None = None) -> NodeProc:
    """Start one ``repro serve --port 0`` node and wait for its address.

    The child gets a private ``REPRO_CACHE_DIR`` and prints its resolved
    ephemeral port on the ready line; this blocks (up to ``timeout``)
    until that line arrives, so the returned :class:`NodeProc` is
    immediately routable.
    """
    os.makedirs(cache_dir, exist_ok=True)
    env = _node_environment(cache_dir)
    if extra_env:
        env.update({k: str(v) for k, v in extra_env.items()})
    cmd = [sys.executable, "-m", "repro", "serve",
           "--host", host, "--port", "0", "--node-id", node_id,
           "--queue-limit", str(queue_limit)]
    if workers is not None:  # None = the serve default (CPU count)
        cmd += ["--workers", str(workers)]
    process = subprocess.Popen(
        cmd, env=env, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True,
        start_new_session=True)  # own group, so kill() can take all of it
    deadline = time.monotonic() + timeout
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            if process.poll() is not None:
                raise RuntimeError(
                    f"node {node_id} exited with {process.returncode} "
                    "before binding")
            time.sleep(0.05)
            continue
        match = READY_RE.search(line)
        if match:
            node = NodeProc(node_id=node_id, host=match.group(1),
                            port=int(match.group(2)), process=process,
                            cache_dir=str(cache_dir))
            _log.info("node %s up at %s (pid %d)", node_id, node.address,
                      node.pid)
            return node
    process.kill()
    raise RuntimeError(
        f"node {node_id} did not print a ready line within {timeout}s "
        f"(last: {line!r})")


class LocalFleet:
    """N spawned nodes behind an in-process router (context manager).

    ::

        with LocalFleet(3, base_dir) as fleet:
            with ServiceClient(fleet.host, fleet.port) as client:
                client.simulate("gzip")
            fleet.kill_node(0)          # SIGKILL; router fails over

    Each node gets ``<base_dir>/cache-<id>`` as its private artifact
    cache.  Router spec knobs (replication, hash seed, peek) pass
    through to :class:`~repro.spec.fleet.FleetSpec`.
    """

    def __init__(self, count: int, base_dir: str, workers: int = 1,
                 queue_limit: int = 64, replication: int = 2,
                 hash_seed: int = 0, peek: bool = True,
                 health_interval_s: float = 0.5,
                 extra_env: dict | None = None):
        self.count = count
        self.base_dir = str(base_dir)
        self.workers = workers
        self.queue_limit = queue_limit
        self.replication = replication
        self.hash_seed = hash_seed
        self.peek = peek
        self.health_interval_s = health_interval_s
        self.extra_env = extra_env
        self.nodes: list[NodeProc] = []
        self.spec: FleetSpec | None = None
        self._router = None

    @property
    def host(self) -> str:
        return self._router.host

    @property
    def port(self) -> int:
        return self._router.port

    @property
    def router(self):
        return self._router.router

    def __enter__(self) -> "LocalFleet":
        from repro.fleet.router import BackgroundRouter

        try:
            for i in range(self.count):
                node_id = f"n{i + 1}"
                cache_dir = os.path.join(self.base_dir, f"cache-{node_id}")
                self.nodes.append(spawn_node(
                    node_id, cache_dir, workers=self.workers,
                    queue_limit=self.queue_limit,
                    extra_env=self.extra_env))
            self.spec = FleetSpec(
                nodes=tuple(node.address for node in self.nodes),
                replication=self.replication, hash_seed=self.hash_seed,
                peek=self.peek,
                health_interval_s=self.health_interval_s)
            self._router = BackgroundRouter(self.spec)
            self._router.__enter__()
        except BaseException:
            self._teardown()
            raise
        return self

    def __exit__(self, *exc_info) -> None:
        self._teardown()

    def _teardown(self) -> None:
        if self._router is not None:
            try:
                self._router.__exit__(None, None, None)
            finally:
                self._router = None
        for node in self.nodes:
            try:
                node.stop()
            except Exception:  # noqa: BLE001 - teardown is best-effort
                node.process.kill()
        self.nodes.clear()

    def kill_node(self, index: int) -> NodeProc:
        """SIGKILL node ``index``; returns it (the router finds out the
        hard way — mid-request resets and failed health probes)."""
        node = self.nodes[index]
        node.kill()
        return node


__all__ = ["LocalFleet", "NodeProc", "READY_RE", "spawn_node"]
