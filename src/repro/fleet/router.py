"""The fleet front door: consistent-hash routing with failover.

``repro route`` runs one of these in front of N ``repro serve`` nodes.
It speaks the service's exact protocol — the same newline-JSON frames
and the same HTTP mapping — so every existing client works unchanged;
the only visible difference is extra response metadata naming the node
that answered.

Request lifecycle
-----------------
1. **Normalize & key.**  The router runs the same
   :func:`repro.service.evaluations.normalize_params` /
   :func:`~repro.service.evaluations.request_key` pair the nodes use,
   so router and node derive the identical content key for a request —
   the whole design hangs on that equality.
2. **Place.**  The key's ring targets (owner first, then clockwise
   siblings, ``replication`` of them) are computed on the
   :class:`~repro.fleet.ring.HashRing`; the forward target is the first
   healthy one under the bounded-load ceiling.
3. **Peek.**  Before paying a forward, the router asks each live target
   for a cached response (the ``peek`` op — a disk probe, never a
   compute).  A sibling hit is replicated toward the owner so the
   shard's natural home warms up, then served.
4. **Forward & fail over.**  On a miss the full request goes to the
   forward target.  A connection failure or reset marks the node
   suspect and replays the request on the next target — safe because
   evaluations are idempotent by content key.  ``overloaded`` from a
   node is also retried on siblings; only when *every* target is
   saturated does the client see ``overloaded``.

Span tracing propagates through the hop: a traced client request gets a
``router.route`` span parented under the client's span, and the node's
spans parent under the router's — one submit, one connected trace.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time

from repro.fleet.client import AsyncServiceClient
from repro.fleet.ring import HashRing
from repro.obs import spans as _spans
from repro.service import protocol
from repro.service.protocol import ErrorCode, ProtocolError
from repro.spec.fleet import FleetSpec
from repro.telemetry.metrics import metrics_registry

_log = logging.getLogger(__name__)

_HTTP_METHODS = (b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ")

#: deadline for a cache peek — a disk probe, not a compute
PEEK_TIMEOUT_S = 5.0


def _package_version() -> str:
    from repro.cli import package_version

    return package_version()


class _Node:
    """One worker node as the router sees it."""

    __slots__ = ("address", "host", "port", "client", "healthy",
                 "node_id", "inflight", "last_error")

    def __init__(self, address: str):
        host, _, port = address.rpartition(":")
        self.address = address
        self.host = host
        self.port = int(port)
        self.client = AsyncServiceClient(self.host, self.port)
        self.healthy = True  # innocent until a probe or a reset says not
        self.node_id: str | None = None
        self.inflight = 0
        self.last_error: str | None = None

    def status(self) -> dict:
        return {"address": self.address, "node_id": self.node_id,
                "healthy": self.healthy, "inflight": self.inflight,
                "last_error": self.last_error}


class FleetRouter:
    """Routes service requests onto a fleet of nodes by content key."""

    def __init__(self, spec: FleetSpec, host: str = "127.0.0.1",
                 port: int = 0):
        if not spec.nodes:
            raise ValueError("FleetSpec has no nodes to route onto")
        self.spec = spec
        self.host = host
        self.port = port
        self.ring = HashRing(spec.nodes, seed=spec.hash_seed,
                             vnodes=spec.vnodes)
        self.nodes: dict[str, _Node] = {
            address: _Node(address) for address in spec.nodes}
        self._server: asyncio.Server | None = None
        self._connections: set[asyncio.Task] = set()
        self._health_task: asyncio.Task | None = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=protocol.MAX_FRAME_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        metrics_registry().gauge("router.nodes").set(len(self.nodes))
        self._health_task = asyncio.ensure_future(self._health_loop())
        _log.info("router listening on %s:%d over %d node(s)",
                  self.host, self.port, len(self.nodes))

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        for node in self.nodes.values():
            await node.client.close()
        _log.info("router stopped")

    # -- health --------------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.gather(
                *(self._check_health(node) for node in self.nodes.values()),
                return_exceptions=True,
            )
            metrics_registry().gauge("router.nodes_healthy").set(
                sum(node.healthy for node in self.nodes.values()))
            await asyncio.sleep(self.spec.health_interval_s)

    async def _check_health(self, node: _Node) -> None:
        """One ``GET /healthz`` probe; recovery re-learns the node id."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(node.host, node.port),
                timeout=self.spec.health_interval_s + 2.0)
            writer.write(b"GET /healthz HTTP/1.1\r\n"
                         b"Host: fleet\r\nConnection: close\r\n\r\n")
            await writer.drain()
            status_line = await asyncio.wait_for(
                reader.readline(), timeout=self.spec.health_interval_s + 2.0)
            writer.close()
            ok = b" 200 " in status_line
        except (OSError, asyncio.TimeoutError, ConnectionError) as exc:
            node.healthy = False
            node.last_error = f"healthz: {exc or type(exc).__name__}"
            return
        if ok and not (node.healthy and node.node_id):
            await self._learn_identity(node)
        node.healthy = ok
        if ok:
            node.last_error = None
        else:
            node.last_error = "healthz: not ok"

    async def _learn_identity(self, node: _Node) -> None:
        try:
            result = await node.client.evaluate("ping", timeout=5.0)
            node.node_id = result.get("node") or node.address
        except Exception as exc:  # noqa: BLE001 - identity is best-effort
            node.last_error = f"ping: {exc}"

    def _mark_down(self, node: _Node, error: str) -> None:
        node.healthy = False
        node.last_error = error
        metrics_registry().gauge("router.nodes_healthy").set(
            sum(n.healthy for n in self.nodes.values()))

    # -- routing --------------------------------------------------------

    def _candidates(self, key: str) -> list[_Node]:
        """Forward order for ``key``: healthy bounded-load targets
        first, then unhealthy ones as a stale-health last resort."""
        targets = [self.nodes[a]
                   for a in self.ring.targets(key, self.spec.replication)]
        healthy = [n for n in targets if n.healthy]
        if healthy:
            loads = {n.address: n.inflight for n in self.nodes.values()}
            first = self.ring.pick(
                key, loads, factor=self.spec.load_factor,
                n=self.spec.replication)
            if self.nodes[first] in healthy:
                healthy.remove(self.nodes[first])
                healthy.insert(0, self.nodes[first])
        return healthy + [n for n in targets if not n.healthy]

    async def _route(self, request: protocol.Request) -> dict:
        """One routed request to its response frame — never raises."""
        metrics = metrics_registry()
        rid = request.id
        try:
            if request.op == "ping":
                return protocol.make_response(rid, {
                    "pong": True, "role": "router",
                    "version": _package_version(),
                    "protocol": protocol.PROTOCOL_VERSION,
                    "nodes": len(self.nodes),
                }, {"served_from": "router"})
            if request.op == "metrics":
                return protocol.make_response(
                    rid, {"metrics": metrics.to_dict()},
                    {"served_from": "router"})
            if request.op == "peek":
                return await self._route_peek(request)

            from repro.service import evaluations

            normalized = evaluations.normalize_params(
                request.op, request.params)
            key = evaluations.request_key(request.op, normalized)
            metrics.counter("router.routed").inc()

            ctx = request.trace
            if ctx is not None and _spans.enabled():
                with _spans.attach(ctx), \
                        _spans.span("router.route", op=request.op,
                                    request_id=rid) as sp:
                    frame, node = await self._dispatch(
                        request, normalized, key,
                        trace=_spans.current_context())
                    sp.set(node=node)
                    return frame
            frame, _ = await self._dispatch(request, normalized, key,
                                            trace=ctx)
            return frame
        except ProtocolError as exc:
            return protocol.make_error(rid, exc.code, str(exc))
        except Exception as exc:  # noqa: BLE001 - the wire must answer
            _log.exception("unexpected error routing a request")
            return protocol.make_error(
                rid, ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}")

    async def _dispatch(self, request: protocol.Request, normalized: dict,
                        key: str | None,
                        trace: dict | None) -> tuple[dict, str | None]:
        """Peek-then-forward over the key's targets, failing over."""
        metrics = metrics_registry()
        start = time.perf_counter()
        if key is None:  # unkeyable request: any healthy node will do
            candidates = [n for n in self.nodes.values() if n.healthy] or \
                list(self.nodes.values())
        else:
            candidates = self._candidates(key)

        if key is not None and self.spec.peek:
            frame = await self._peek_targets(request, key, candidates,
                                             trace=trace)
            if frame is not None:
                metrics.histogram("router.request_s").observe(
                    time.perf_counter() - start)
                return frame, frame.get("meta", {}).get("node")

        saw_overloaded = False
        for node in candidates:
            node.inflight += 1
            try:
                response = await node.client.request(
                    request.op, normalized, timeout=request.timeout,
                    trace=trace)
            except (ConnectionError, OSError) as exc:
                self._mark_down(node, f"forward: {exc}")
                metrics.counter("router.failover").inc()
                _log.warning("node %s failed mid-request (%s); "
                             "failing over", node.address, exc)
                continue
            except asyncio.TimeoutError:
                metrics.counter("router.failover").inc()
                _log.warning("node %s timed out; failing over",
                             node.address)
                continue
            finally:
                node.inflight -= 1
            metrics.counter("router.forwarded").inc()
            if not response.get("ok") and (response.get("error") or {}).get(
                    "code") == ErrorCode.OVERLOADED:
                saw_overloaded = True
                continue  # a sibling may have headroom; replays are safe
            # The node answered the router's internal request id; the
            # client is waiting on its own.
            response = dict(response)
            response["id"] = request.id
            meta = dict(response.get("meta") or {})
            meta.setdefault("node", node.node_id or node.address)
            meta["router"] = {"target": node.address,
                              "owner": candidates[0].address}
            response["meta"] = meta
            metrics.histogram("router.request_s").observe(
                time.perf_counter() - start)
            return response, meta.get("node")

        if saw_overloaded:
            metrics.counter("router.overloaded").inc()
            return protocol.make_error(
                request.id, ErrorCode.OVERLOADED,
                "every replica target is saturated"), None
        return protocol.make_error(
            request.id, ErrorCode.INTERNAL,
            "no fleet node could serve the request"), None

    async def _peek_targets(self, request: protocol.Request, key: str,
                            candidates: list[_Node],
                            trace: dict | None = None) -> dict | None:
        """Serve from any target's cache; replicate hits to the owner."""
        metrics = metrics_registry()
        owner = candidates[0] if candidates else None
        for node in candidates:
            try:
                result = await node.client.evaluate(
                    "peek", {"key": key}, timeout=PEEK_TIMEOUT_S,
                    trace=trace)
            except Exception:  # noqa: BLE001 - peeks are best-effort
                continue
            if not result.get("found"):
                continue
            metrics.counter("router.peek_hit").inc()
            payload = result["result"]
            if owner is not None and node is not owner and owner.healthy:
                try:
                    await owner.client.evaluate(
                        "peek", {"key": key, "store": payload},
                        timeout=PEEK_TIMEOUT_S, trace=trace)
                    metrics.counter("router.replicated").inc()
                except Exception:  # noqa: BLE001 - replication is advisory
                    pass
            return protocol.make_response(request.id, payload, {
                "served_from": "peek",
                "node": node.node_id or node.address,
                "router": {"target": node.address,
                           "owner": owner.address if owner else None},
            })
        metrics.counter("router.peek_miss").inc()
        return None

    async def _route_peek(self, request: protocol.Request) -> dict:
        """An external ``peek``: probe the key's targets, first hit wins."""
        key = request.params.get("key")
        if not isinstance(key, str) or not key:
            raise ProtocolError("'peek' requires a string 'key'")
        for node in self._candidates(key):
            try:
                result = await node.client.evaluate(
                    "peek", request.params, timeout=PEEK_TIMEOUT_S)
            except Exception:  # noqa: BLE001
                continue
            if result.get("found") or result.get("stored"):
                return protocol.make_response(
                    request.id, result,
                    {"served_from": "peek",
                     "node": node.node_id or node.address})
        return protocol.make_response(
            request.id, {"found": False, "result": None},
            {"served_from": "router"})

    # -- status ---------------------------------------------------------

    def fleet_status(self) -> dict:
        """The ``/fleet`` document: topology, health, router counters."""
        registry = metrics_registry()
        counters = {
            name: registry.counter(name).value
            for name in ("router.routed", "router.forwarded",
                         "router.peek_hit", "router.peek_miss",
                         "router.replicated", "router.failover",
                         "router.overloaded")
        }
        return {
            "router": {"host": self.host, "port": self.port,
                       "version": _package_version(),
                       "protocol": protocol.PROTOCOL_VERSION},
            "spec": self.spec.to_dict(),
            "nodes": [self.nodes[a].status() for a in self.spec.nodes],
            "healthy": sum(n.healthy for n in self.nodes.values()),
            "counters": counters,
        }

    # -- connection handling (same dual dialect as the service) ----------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            first = await reader.readline()
            if not first:
                return
            if any(first.startswith(m) for m in _HTTP_METHODS):
                await self._handle_http(first, reader, writer)
            else:
                await self._handle_frames(first, reader, writer)
        except (ConnectionResetError, asyncio.IncompleteReadError,
                ValueError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError, asyncio.CancelledError):
                pass

    async def _handle_frames(self, first: bytes,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        line = first
        while line:
            if line.strip():
                task = asyncio.ensure_future(
                    self._answer_frame(line, writer, lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            line = await reader.readline()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def _answer_frame(self, line: bytes,
                            writer: asyncio.StreamWriter,
                            lock: asyncio.Lock) -> None:
        response = await self._respond(line)
        async with lock:
            writer.write(protocol.encode_frame(response))
            try:
                await writer.drain()
            except (ConnectionResetError, OSError):
                pass

    async def _respond(self, line: bytes) -> dict:
        rid = ""
        try:
            frame = protocol.decode_frame(line)
            rid = str(frame.get("id", "")) if isinstance(frame, dict) else ""
            request = protocol.parse_request(frame)
            return await self._route(request)
        except ProtocolError as exc:
            return protocol.make_error(rid, exc.code, str(exc))
        except Exception as exc:  # noqa: BLE001
            _log.exception("unexpected error answering a routed request")
            return protocol.make_error(
                rid, ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}")

    async def _handle_http(self, request_line: bytes,
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            method, target, _ = request_line.decode().split(None, 2)
        except ValueError:
            await self._http_reply(writer, 400, "bad request line\n")
            return
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    pass
        body = b""
        if content_length:
            if content_length > protocol.MAX_FRAME_BYTES:
                await self._http_reply(writer, 413, "body too large\n")
                return
            body = await reader.readexactly(content_length)

        path = target.split("?", 1)[0]
        if method in ("GET", "HEAD") and path == "/healthz":
            if any(node.healthy for node in self.nodes.values()):
                await self._http_reply(writer, 200, "ok\n")
            else:
                await self._http_reply(writer, 503, "no healthy nodes\n")
        elif method in ("GET", "HEAD") and path == "/metrics":
            await self._http_reply(
                writer, 200,
                metrics_registry().to_prometheus(labels={"node": "router"}),
                content_type="text/plain; version=0.0.4")
        elif method in ("GET", "HEAD") and path == "/version":
            doc = {"version": _package_version(),
                   "protocol": protocol.PROTOCOL_VERSION,
                   "host": self.host, "port": self.port, "role": "router"}
            await self._http_reply(writer, 200, json.dumps(doc) + "\n",
                                   content_type="application/json")
        elif method in ("GET", "HEAD") and path == "/fleet":
            await self._http_reply(
                writer, 200,
                json.dumps(self.fleet_status(), sort_keys=True) + "\n",
                content_type="application/json")
        elif method == "POST" and path == "/v1/eval":
            response = await self._respond(body)
            status = 200
            if not response["ok"]:
                code = response["error"]["code"]
                status = {ErrorCode.OVERLOADED: 503,
                          ErrorCode.SHUTTING_DOWN: 503,
                          ErrorCode.TIMEOUT: 504,
                          ErrorCode.INTERNAL: 500}.get(code, 400)
            await self._http_reply(
                writer, status,
                json.dumps(response, sort_keys=True) + "\n",
                content_type="application/json")
        else:
            await self._http_reply(writer, 404, f"no route {path}\n")

    async def _http_reply(self, writer: asyncio.StreamWriter, status: int,
                          body: str,
                          content_type: str = "text/plain") -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  413: "Payload Too Large", 500: "Internal Server Error",
                  503: "Service Unavailable",
                  504: "Gateway Timeout"}.get(status, "Unknown")
        payload = body.encode()
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + payload)
        try:
            await writer.drain()
        except (ConnectionResetError, OSError):
            pass


async def _route_async(spec: FleetSpec, host: str, port: int,
                       ready=None) -> None:
    router = FleetRouter(spec, host, port)
    await router.start()
    if ready is not None:
        ready(router)
    try:
        await router.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await router.stop()


def route(spec: FleetSpec, host: str = "127.0.0.1", port: int = 7400,
          ready=None) -> None:
    """Run a router until interrupted (the ``repro route`` entry)."""
    try:
        asyncio.run(_route_async(spec, host, port, ready))
    except KeyboardInterrupt:
        _log.info("interrupted; router stopped")


class BackgroundRouter:
    """A router on a daemon thread — tests, benchmarks, embedding.

    ::

        with BackgroundRouter(spec) as bg:
            with ServiceClient(bg.host, bg.port) as client:
                client.simulate("gzip")   # routed onto the fleet

    The context entry blocks until the socket is bound; the exit stops
    the router (the nodes are not the router's to stop).
    """

    def __init__(self, spec: FleetSpec, host: str = "127.0.0.1",
                 port: int = 0):
        self._spec = spec
        self._host = host
        self._port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._router: FleetRouter | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._failure: BaseException | None = None

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        assert self._router is not None, "not started"
        return self._router.port

    @property
    def router(self) -> FleetRouter:
        assert self._router is not None, "not started"
        return self._router

    def __enter__(self) -> "BackgroundRouter":
        self._thread = threading.Thread(
            target=self._run, name="repro-router", daemon=True)
        self._thread.start()
        self._started.wait(timeout=30)
        if self._failure is not None:
            raise RuntimeError("router failed to start") from self._failure
        assert self._router is not None
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None and self._loop.is_running():
            asyncio.run_coroutine_threadsafe(
                self._shutdown(), self._loop).result(timeout=60)
        if self._thread is not None:
            self._thread.join(timeout=60)

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            try:
                router = FleetRouter(self._spec, self._host, self._port)
                await router.start()
                self._router = router
            except BaseException as exc:
                self._failure = exc
                raise
            finally:
                self._started.set()
            await self._stop.wait()

        try:
            asyncio.run(main())
        except BaseException:  # pragma: no cover - already recorded
            pass

    async def _shutdown(self) -> None:
        if self._router is not None:
            await self._router.stop()
        self._stop.set()


__all__ = ["BackgroundRouter", "FleetRouter", "route"]
