"""Consistent hashing with virtual nodes and bounded-load placement.

The router's placement problem: map a request's content key onto one of
N nodes so that (a) the same key always lands on the same node — that
node's artifact cache stays hot for its shard — and (b) membership
changes move as few keys as possible.  A classic consistent-hash ring
solves both: every node projects ``vnodes`` points onto a 64-bit circle
(points depend only on ``(seed, node, index)``, so any process that
knows the member list rebuilds the identical ring), and a key is owned
by the first node point at or clockwise-after the key's own hash.
Adding or removing one node moves only the arcs adjacent to its points
— in expectation ``K/N`` of K keys, the bound the fleet tests assert.

``targets(key, n)`` walks clockwise collecting *distinct* nodes: the
owner first, then the failover/replication siblings, in an order every
router instance derives identically.  ``pick`` adds bounded-load
placement (Mirrokni et al.'s consistent hashing with bounded loads):
walk the same target order but skip nodes whose outstanding load
exceeds ``factor`` times the fleet mean, so one hot key cannot bury its
owner while siblings idle.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Mapping, Sequence


def _hash64(text: str) -> int:
    """Stable 64-bit point for ``text`` (first 8 bytes of SHA-256)."""
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """An immutable consistent-hash ring over ``host:port`` node names.

    Construction is deterministic in ``(nodes, seed, vnodes)`` — node
    order does not matter.  Membership changes return new rings
    (:meth:`with_node` / :meth:`without_node`) so callers can diff
    placements.
    """

    def __init__(self, nodes: Iterable[str], seed: int = 0,
                 vnodes: int = 64):
        self.seed = int(seed)
        self.vnodes = int(vnodes)
        self.nodes: tuple[str, ...] = tuple(sorted(set(nodes)))
        if self.vnodes < 1:
            raise ValueError("vnodes must be positive")
        points: list[tuple[int, str]] = []
        for node in self.nodes:
            for i in range(self.vnodes):
                points.append((_hash64(f"{self.seed}:{node}:{i}"), node))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [n for _, n in points]

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: str) -> bool:
        return node in self.nodes

    def key_point(self, key: str) -> int:
        """Where ``key`` lands on the circle (seed-salted)."""
        return _hash64(f"{self.seed}:key:{key}")

    def owner(self, key: str) -> str:
        """The node owning ``key`` — first point clockwise of the key."""
        if not self.nodes:
            raise ValueError("empty ring")
        idx = bisect.bisect_right(self._points, self.key_point(key))
        if idx == len(self._points):
            idx = 0  # wrap past twelve o'clock
        return self._owners[idx]

    def targets(self, key: str, n: int) -> list[str]:
        """The first ``n`` *distinct* nodes clockwise from ``key``.

        ``targets(key, 1)[0] == owner(key)``; the rest are the failover
        and replication siblings, in deterministic preference order.
        """
        if not self.nodes:
            raise ValueError("empty ring")
        n = min(n, len(self.nodes))
        start = bisect.bisect_right(self._points, self.key_point(key))
        out: list[str] = []
        for step in range(len(self._points)):
            node = self._owners[(start + step) % len(self._points)]
            if node not in out:
                out.append(node)
                if len(out) == n:
                    break
        return out

    def pick(self, key: str, loads: Mapping[str, int],
             factor: float = 1.25, n: int | None = None) -> str:
        """Bounded-load choice among ``targets(key, n)``.

        Walks the target order and returns the first node whose current
        outstanding load (``loads``, missing = 0) stays at or under
        ``factor`` times the fleet mean; when every candidate is over
        the bound — a burst saturating the whole replica set — the
        least-loaded candidate wins, keeping placement total.
        """
        candidates = self.targets(key, n if n is not None else len(self))
        mean = sum(loads.get(node, 0) for node in self.nodes) / len(self)
        bound = factor * max(mean, 1.0)
        for node in candidates:
            if loads.get(node, 0) <= bound:
                return node
        return min(candidates, key=lambda node: loads.get(node, 0))

    # -- membership ------------------------------------------------------

    def with_node(self, node: str) -> "HashRing":
        """A new ring with ``node`` joined."""
        return HashRing([*self.nodes, node], self.seed, self.vnodes)

    def without_node(self, node: str) -> "HashRing":
        """A new ring with ``node`` departed."""
        return HashRing([n for n in self.nodes if n != node],
                        self.seed, self.vnodes)

    def placement(self, keys: Sequence[str]) -> dict[str, str]:
        """``{key: owner}`` for a batch of keys (rebalance diffing)."""
        return {key: self.owner(key) for key in keys}


__all__ = ["HashRing"]
