"""Node-level cache peering: serve keys a sibling already computed.

The router peeks caches *from above*; this module wires the same idea
in at the node, below the scheduler.  ``repro serve --peer HOST:PORT``
installs a :func:`repro.runner.artifacts.set_remote_probe` hook, so
when this node's scheduler misses its local response cache it asks the
peer's ``peek`` op before scheduling a compute — and replicates a hit
into the local store.  The peer answers from *its* disk only
(``remote=False`` inside the ``peek`` handler), so two nodes peering at
each other can never probe in a loop.

The probe runs on the serving node's event-loop thread, so it must stay
cheap: one pooled blocking connection with a short timeout, and a
circuit breaker that stops asking a peer that just failed for
``retry_s`` seconds instead of stalling every request on a dead host.
"""

from __future__ import annotations

import logging
import threading
import time

from repro.service.client import ServiceClient
from repro.telemetry.metrics import metrics_registry

_log = logging.getLogger(__name__)


class PeerCache:
    """A remote-probe hook backed by one peer service's ``peek`` op."""

    def __init__(self, host: str, port: int, timeout: float = 2.0,
                 retry_s: float = 5.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry_s = retry_s
        self._client: ServiceClient | None = None
        self._lock = threading.Lock()
        self._down_until = 0.0

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def __call__(self, kind: str, key: str) -> tuple[bool, object]:
        """The :func:`~repro.runner.artifacts.set_remote_probe` hook."""
        if kind != "response":  # only wire-keyed responses travel
            return False, None
        if time.monotonic() < self._down_until:
            return False, None
        metrics = metrics_registry()
        with self._lock:
            try:
                if self._client is None:
                    self._client = ServiceClient(
                        self.host, self.port, timeout=self.timeout)
                    self._client.connect()
                result = self._client.peek(key)
            except Exception as exc:  # noqa: BLE001 - a dead peer is a miss
                self._drop(f"{type(exc).__name__}: {exc}")
                metrics.counter("service.peer_error").inc()
                return False, None
        if result.get("found"):
            metrics.counter("service.peer_hit").inc()
            return True, result["result"]
        metrics.counter("service.peer_miss").inc()
        return False, None

    def _drop(self, why: str) -> None:
        _log.warning("peer %s unavailable (%s); backing off %.1fs",
                     self.address, why, self.retry_s)
        if self._client is not None:
            self._client.close()
            self._client = None
        self._down_until = time.monotonic() + self.retry_s

    def close(self) -> None:
        with self._lock:
            if self._client is not None:
                self._client.close()
                self._client = None


def install_peer(address: str, timeout: float = 2.0) -> PeerCache:
    """Point this process's artifact cache at a peer (``--peer``).

    Returns the installed :class:`PeerCache`; the previous hook (if
    any) is replaced.
    """
    from repro.runner import artifacts

    host, _, port = address.rpartition(":")
    peer = PeerCache(host or "127.0.0.1", int(port), timeout=timeout)
    artifacts.set_remote_probe(peer)
    _log.info("peer cache installed: %s", peer.address)
    return peer


__all__ = ["PeerCache", "install_peer"]
