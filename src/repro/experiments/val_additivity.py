"""Additivity validation — the measured CPI stack vs the model's.

The paper's whole construction rests on penalties adding independently
(Eq. 1); Figure 16 then *renders* the assumption as a stack.  This
experiment closes the loop: the detailed simulator's stall accountant
classifies every cycle into exactly one stall class, so the measured
components sum to the simulated CPI by construction, and folding them
onto the model's slices (:meth:`MeasuredCPIStack.as_model_stack`) makes
the model's decomposition directly comparable with what the machine
actually did cycle by cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ProcessorConfig
from repro.core.model import FirstOrderModel
from repro.core.stack import STACK_ORDER, CPIStack
from repro.experiments.common import (
    BASELINE,
    BENCHMARK_ORDER,
    DEFAULT_TRACE_LENGTH,
    Claim,
    cached_trace,
    format_table,
    WorkloadSpec,
    workload_for,
)
from repro.simulator.processor import DetailedSimulator
from repro.telemetry.accountant import MeasuredCPIStack, render_side_by_side

#: benchmarks the agreement-band claims quote (a mid-ILP, a frontend-
#: bound and a window-bound benchmark); the run still covers all of them
BAND_BENCHMARKS = ("gzip", "vortex", "vpr")

#: |model - measured| CPI band for the total, in cycles per instruction
TOTAL_BAND = 0.35


@dataclass(frozen=True)
class AdditivityRow:
    """One benchmark's model stack next to its measured stack."""

    model: CPIStack
    measured: MeasuredCPIStack

    @property
    def name(self) -> str:
        return self.model.name

    @property
    def residual(self) -> float:
        """Measured components' deviation from the simulated CPI."""
        return abs(self.measured.total - self.measured.cpi)

    @property
    def total_error(self) -> float:
        """Model total CPI minus measured total CPI."""
        return self.model.total - self.measured.total

    def component_error(self, key: str) -> float:
        return self.model.component(key) - self.measured.as_model_stack().component(key)


@dataclass(frozen=True)
class AdditivityResult:
    rows: tuple[AdditivityRow, ...]

    def row(self, benchmark: str) -> AdditivityRow:
        for r in self.rows:
            if r.name == benchmark:
                return r
        raise KeyError(benchmark)

    def format(self) -> str:
        return format_table(
            ("bench", "model CPI", "measured CPI", "error", "residual"),
            [
                (r.name, r.model.total, r.measured.total,
                 r.total_error, f"{r.residual:.1e}")
                for r in self.rows
            ],
        )

    def render(self) -> str:
        return "\n\n".join(
            render_side_by_side(r.model, r.measured) for r in self.rows
        )

    def checks(self) -> list[Claim]:
        worst_residual = max(r.residual for r in self.rows)
        worst_total = max(abs(r.total_error) for r in self.rows)
        claims = [
            Claim(
                "measured stall classes partition the simulated cycles "
                "(components sum to the simulated CPI)",
                worst_residual < 1e-9,
                f"worst residual {worst_residual:.2e}",
            ),
            Claim(
                "the model's additive CPI tracks the measured total "
                f"within {TOTAL_BAND} CPI on every benchmark",
                worst_total < TOTAL_BAND,
                f"worst |model - measured| {worst_total:.3f}",
            ),
        ]
        for name in BAND_BENCHMARKS:
            row = self.row(name)
            claims.append(
                Claim(
                    f"{name}: model total CPI within {TOTAL_BAND} of the "
                    "measured total",
                    abs(row.total_error) < TOTAL_BAND,
                    f"model {row.model.total:.3f}, "
                    f"measured {row.measured.total:.3f}",
                )
            )
        loss_keys = [k for k in STACK_ORDER if k != "ideal"]
        for name in ("mcf", "twolf"):
            folded = self.row(name).measured.as_model_stack()
            claims.append(
                Claim(
                    f"{name}: measurement confirms long data-cache misses "
                    "as the dominant loss (paper Figure 16)",
                    max(loss_keys, key=folded.component) == "l2_dcache",
                    f"measured L2-D CPI {folded.l2_dcache:.3f}",
                )
            )
        return claims


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_ORDER,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    config: ProcessorConfig = BASELINE,
    workload: WorkloadSpec | None = None,
) -> AdditivityResult:
    model = FirstOrderModel(config)
    rows = []
    for name in benchmarks:
        trace = cached_trace(workload_for(workload, name, trace_length))
        model_stack = model.evaluate_trace(trace).stack()
        sim = DetailedSimulator(config, telemetry=True)
        sim.run(trace)
        rows.append(
            AdditivityRow(
                model=model_stack,
                measured=sim.last_telemetry.report.stack,
            )
        )
    return AdditivityResult(rows=tuple(rows))


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    print()
    print(result.render())
    for claim in result.checks():
        print(claim)
