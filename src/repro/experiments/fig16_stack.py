"""Figure 16 — the CPI "stack model".

"Because delays independently add, we can build a stack model of
performance": per benchmark, the CPI decomposed into ideal, L1/L2
instruction-miss, L2 data-miss and branch-misprediction slices.  The
paper highlights that mcf and twolf are dominated by long data-cache
misses (≈70% and ≈60% of CPI) while gzip's loss is mostly branches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ProcessorConfig
from repro.core.model import FirstOrderModel
from repro.core.stack import CPIStack, render_stacks
from repro.experiments.common import (
    BASELINE,
    BENCHMARK_ORDER,
    DEFAULT_TRACE_LENGTH,
    Claim,
    cached_trace,
    format_table,
    WorkloadSpec,
    workload_for,
)
from repro.simulator.processor import DetailedSimulator
from repro.telemetry.accountant import MeasuredCPIStack, render_side_by_side
from repro.telemetry.session import telemetry_enabled


@dataclass(frozen=True)
class StackResult:
    stacks: tuple[CPIStack, ...]
    #: measured stacks from the instrumented detailed simulation, in the
    #: same benchmark order; empty when telemetry was not requested
    measured: tuple[MeasuredCPIStack, ...] = ()

    def stack(self, benchmark: str) -> CPIStack:
        for s in self.stacks:
            if s.name == benchmark:
                return s
        raise KeyError(benchmark)

    def measured_stack(self, benchmark: str) -> MeasuredCPIStack:
        for s in self.measured:
            if s.name == benchmark:
                return s
        raise KeyError(benchmark)

    def format(self) -> str:
        table = format_table(
            ("bench", "ideal", "L1 I$", "L2 I$", "L2 D$", "branch",
             "total"),
            [
                (s.name, s.ideal, s.l1_icache, s.l2_icache, s.l2_dcache,
                 s.branch, s.total)
                for s in self.stacks
            ],
        )
        if not self.measured:
            return table
        folded = [m.as_model_stack() for m in self.measured]
        measured_table = format_table(
            ("bench", "ideal", "L1 I$", "L2 I$", "L2 D$", "branch",
             "total"),
            [
                (f.name, f.ideal, f.l1_icache, f.l2_icache, f.l2_dcache,
                 f.branch, f.total)
                for f in folded
            ],
        )
        return (
            "model:\n" + table
            + "\n\nmeasured (detailed simulation):\n" + measured_table
        )

    def render(self) -> str:
        if self.measured:
            return "\n\n".join(
                render_side_by_side(self.stack(m.name), m)
                for m in self.measured
            )
        return render_stacks(self.stacks)

    def checks(self) -> list[Claim]:
        mcf = self.stack("mcf")
        twolf = self.stack("twolf")
        gzip = self.stack("gzip")
        non_ideal_gzip = {
            k: gzip.component(k)
            for k in ("l1_icache", "l2_icache", "l2_dcache", "branch")
        }
        claims = [
            Claim(
                "mcf is dominated by long data-cache misses "
                "(paper: ~70% of CPI)",
                mcf.fraction("l2_dcache") > 0.45,
                f"mcf L2-D share {mcf.fraction('l2_dcache'):.0%}",
            ),
            Claim(
                "twolf's largest loss is long data-cache misses "
                "(paper: ~60% of CPI)",
                twolf.fraction("l2_dcache")
                == max(
                    twolf.fraction(k)
                    for k in ("l1_icache", "l2_icache", "l2_dcache", "branch")
                ),
                f"twolf L2-D share {twolf.fraction('l2_dcache'):.0%}",
            ),
            Claim(
                "gzip's performance loss is mostly branch mispredictions",
                max(non_ideal_gzip, key=non_ideal_gzip.get) == "branch",
                f"gzip branch share {gzip.fraction('branch'):.0%}",
            ),
            Claim(
                "every stack is non-negative and sums to the model CPI",
                all(s.total > 0 for s in self.stacks),
                "all totals positive",
            ),
        ]
        if self.measured:
            worst = max(
                abs(m.total - m.cycles / m.instructions)
                for m in self.measured
            )
            claims.append(
                Claim(
                    "measured stack components sum to the simulated CPI",
                    worst < 1e-9,
                    f"worst residual {worst:.2e}",
                )
            )
        return claims


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_ORDER,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    config: ProcessorConfig = BASELINE,
    measured: bool | None = None,
    workload: WorkloadSpec | None = None,
) -> StackResult:
    """Model CPI stacks, optionally next to measured ones.

    ``measured=None`` defers to the ``REPRO_TELEMETRY`` environment knob;
    when it resolves true, each benchmark is also run through the
    detailed simulator with the stall accountant attached and the
    measured stack reported alongside the model's.
    """
    if measured is None:
        measured = telemetry_enabled()
    model = FirstOrderModel(config)
    stacks = []
    measured_stacks = []
    for name in benchmarks:
        trace = cached_trace(workload_for(workload, name, trace_length))
        stacks.append(model.evaluate_trace(trace).stack())
        if measured:
            sim = DetailedSimulator(config, telemetry=True)
            sim.run(trace)
            measured_stacks.append(sim.last_telemetry.report.stack)
    return StackResult(
        stacks=tuple(stacks), measured=tuple(measured_stacks)
    )


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
