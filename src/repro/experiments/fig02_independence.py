"""Figure 2 — miss-event penalties are approximately independent.

The paper's opening experiment (§1.1): simulate five configurations —
(1) everything ideal, (2) everything real, (3) only the predictor real,
(4) only the I-cache real, (5) only the D-cache real — and compare the
"real" IPC with the IPC obtained by adding the three independently
measured penalties to the ideal time.  A third bar compensates for branch
and I-cache events that overlap a long data-cache miss by dropping their
penalties.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ProcessorConfig
from repro.experiments.common import (
    BASELINE,
    BENCHMARK_ORDER,
    DEFAULT_TRACE_LENGTH,
    Claim,
    cached_trace,
    format_table,
    mean,
    WorkloadSpec,
    workload_for,
)
from repro.simulator.processor import DetailedSimulator
from repro.trace.trace import Trace


@dataclass(frozen=True)
class IndependenceRow:
    """Per-benchmark Figure-2 bars."""

    benchmark: str
    combined_ipc: float      #: bar 1 — the fully "realistic" simulation
    independent_ipc: float   #: bar 2 — penalties summed independently
    compensated_ipc: float   #: bar 3 — overlaps with d-misses compensated

    @property
    def independent_error(self) -> float:
        """Relative error of the independent approximation."""
        return abs(self.independent_ipc - self.combined_ipc) / self.combined_ipc

    @property
    def compensated_error(self) -> float:
        return abs(self.compensated_ipc - self.combined_ipc) / self.combined_ipc


@dataclass(frozen=True)
class IndependenceResult:
    rows: tuple[IndependenceRow, ...]

    def mean_independent_error(self) -> float:
        return mean([r.independent_error for r in self.rows])

    def mean_compensated_error(self) -> float:
        return mean([r.compensated_error for r in self.rows])

    def format(self) -> str:
        return format_table(
            ("bench", "combined", "independent", "compensated",
             "indep err", "comp err"),
            [
                (r.benchmark, r.combined_ipc, r.independent_ipc,
                 r.compensated_ipc, f"{r.independent_error:.1%}",
                 f"{r.compensated_error:.1%}")
                for r in self.rows
            ],
        )

    def checks(self) -> list[Claim]:
        mean_err = self.mean_independent_error()
        worst = max(r.independent_error for r in self.rows)
        return [
            Claim(
                "independent-penalty approximation is accurate on average "
                "(paper: 5% mean error)",
                mean_err < 0.10,
                f"mean error {mean_err:.1%}",
            ),
            Claim(
                "worst-case independent error stays moderate (paper: 16%)",
                worst < 0.25,
                f"worst error {worst:.1%}",
            ),
        ]


def _overlap_fractions(
    trace: Trace, config: ProcessorConfig, window: int
) -> tuple[float, float]:
    """Fractions of mispredictions / I-misses that fall within ``window``
    dynamic instructions after a long data-cache miss (the paper counts
    these during simulation 2 and drops their penalties)."""
    ann = DetailedSimulator(config).annotate(trace)
    long_idx = np.flatnonzero(ann.long_miss)
    if long_idx.size == 0:
        return 0.0, 0.0

    def frac(event_idx: np.ndarray) -> float:
        if event_idx.size == 0:
            return 0.0
        pos = np.searchsorted(long_idx, event_idx, side="right") - 1
        valid = pos >= 0
        dist = np.where(valid, event_idx - long_idx[np.clip(pos, 0, None)],
                        window + 1)
        return float((dist <= window).mean())

    br = frac(np.flatnonzero(ann.mispredicted))
    ic = frac(np.flatnonzero(ann.fetch_stall > 0))
    return br, ic


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_ORDER,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    config: ProcessorConfig = BASELINE,
    workload: WorkloadSpec | None = None,
) -> IndependenceResult:
    """Run the five-configuration experiment for each benchmark."""
    rows = []
    for name in benchmarks:
        trace = cached_trace(workload_for(workload, name, trace_length))
        n = len(trace)
        ideal = DetailedSimulator(config.all_ideal(), instrument=False).run(trace)
        real = DetailedSimulator(config.all_real(), instrument=False).run(trace)
        bp = DetailedSimulator(config.only_real_predictor(),
                               instrument=False).run(trace)
        ic = DetailedSimulator(config.only_real_icache(),
                               instrument=False).run(trace)
        dc = DetailedSimulator(config.only_real_dcache(),
                               instrument=False).run(trace)

        br_cycles = bp.cycles - ideal.cycles
        ic_cycles = ic.cycles - ideal.cycles
        dc_cycles = dc.cycles - ideal.cycles
        independent = ideal.cycles + br_cycles + ic_cycles + dc_cycles

        f_br, f_ic = _overlap_fractions(trace, config.all_real(),
                                        config.rob_size)
        compensated = (
            ideal.cycles
            + br_cycles * (1.0 - f_br)
            + ic_cycles * (1.0 - f_ic)
            + dc_cycles
        )
        rows.append(
            IndependenceRow(
                benchmark=name,
                combined_ipc=n / real.cycles,
                independent_ipc=n / independent,
                compensated_ipc=n / compensated,
            )
        )
    return IndependenceResult(rows=tuple(rows))


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
