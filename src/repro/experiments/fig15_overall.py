"""Figure 15 — the headline: model CPI vs detailed-simulation CPI.

Follows the §5 recipe end to end for each benchmark and compares against
the detailed simulator.  The paper reports a 5.8% average error with
mcf/gzip/twolf worst at 12–13%; the checks assert our errors stay in the
same band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ProcessorConfig
from repro.core.model import FirstOrderModel, ModelReport
from repro.experiments.common import (
    BASELINE,
    BENCHMARK_ORDER,
    DEFAULT_TRACE_LENGTH,
    Claim,
    cached_trace,
    format_table,
    mean,
    WorkloadSpec,
    workload_for,
)
from repro.runner import WorkUnit, run_units
from repro.spec import MachineSpec, RunSpec, SpecError, SweepSpec

#: accuracy bands asserted by the checks (paper: 5.8% mean, 13% worst)
MEAN_ERROR_BAND = 0.10
WORST_ERROR_BAND = 0.20


@dataclass(frozen=True)
class OverallRow:
    benchmark: str
    report: ModelReport
    simulated_cpi: float

    @property
    def model_cpi(self) -> float:
        return self.report.cpi

    @property
    def relative_error(self) -> float:
        return abs(self.model_cpi - self.simulated_cpi) / self.simulated_cpi

    @property
    def signed_error(self) -> float:
        return (self.model_cpi - self.simulated_cpi) / self.simulated_cpi


@dataclass(frozen=True)
class OverallResult:
    rows: tuple[OverallRow, ...]

    def mean_error(self) -> float:
        return mean([r.relative_error for r in self.rows])

    def worst_error(self) -> float:
        return max(r.relative_error for r in self.rows)

    def format(self) -> str:
        table = format_table(
            ("bench", "model CPI", "sim CPI", "error"),
            [
                (r.benchmark, r.model_cpi, r.simulated_cpi,
                 f"{r.signed_error:+.1%}")
                for r in self.rows
            ],
        )
        return (
            table
            + f"\nmean |error| {self.mean_error():.1%}, worst "
            f"{self.worst_error():.1%} (paper: 5.8% / 13%)"
        )

    def checks(self) -> list[Claim]:
        return [
            Claim(
                "mean model-vs-simulation CPI error is in the paper's band "
                "(paper: 5.8%)",
                self.mean_error() < MEAN_ERROR_BAND,
                f"mean |error| {self.mean_error():.1%}",
            ),
            Claim(
                "worst-case error stays first-order (paper: 13%)",
                self.worst_error() < WORST_ERROR_BAND,
                f"worst |error| {self.worst_error():.1%}",
            ),
            Claim(
                "model ranks the benchmarks' CPI like the simulator "
                "(who wins)",
                _rank_agreement(self.rows) >= 0.8,
                f"rank correlation {_rank_agreement(self.rows):.2f}",
            ),
        ]


def _rank_agreement(rows: tuple[OverallRow, ...]) -> float:
    """Spearman rank correlation between model and simulated CPIs."""
    n = len(rows)
    if n < 2:
        return 1.0
    model_rank = {r.benchmark: i for i, r in enumerate(
        sorted(rows, key=lambda r: r.model_cpi))}
    sim_rank = {r.benchmark: i for i, r in enumerate(
        sorted(rows, key=lambda r: r.simulated_cpi))}
    d2 = sum((model_rank[r.benchmark] - sim_rank[r.benchmark]) ** 2
             for r in rows)
    return 1.0 - 6.0 * d2 / (n * (n * n - 1))


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_ORDER,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    config: ProcessorConfig = BASELINE,
    workload: WorkloadSpec | None = None,
) -> OverallResult:
    if not benchmarks:
        return OverallResult(rows=())
    model = FirstOrderModel(config)
    try:
        sweep = SweepSpec(
            base=RunSpec(
                workload=workload_for(workload, benchmarks[0], trace_length),
                machine=MachineSpec.from_config(config.all_real()),
            ),
            benchmarks=benchmarks,
        )
        units: list = list(sweep.expand())
    except SpecError:
        # configs outside the spec vocabulary fall back to raw WorkUnits
        units = [
            WorkUnit(benchmark=name, config=config.all_real(),
                     length=trace_length)
            for name in benchmarks
        ]
    sims, _ = run_units(units)
    rows = []
    for name, sim in zip(benchmarks, sims):
        trace = cached_trace(workload_for(workload, name, trace_length))
        report = model.evaluate_trace(trace)
        rows.append(
            OverallRow(
                benchmark=name, report=report,
                simulated_cpi=sim.result.cpi,
            )
        )
    return OverallResult(rows=tuple(rows))


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
