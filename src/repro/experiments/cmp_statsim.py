"""Related-work comparison: model vs statistical simulation (paper §1.2).

"Statistical simulation methods collect many of the same program
statistics as used by our model, and use them to generate a synthetic
trace that drives a simple superscalar simulator.  In effect, our model
performs statistical simulation, without the simulation, and overall
accuracy is similar."

This experiment runs all three estimators per benchmark — detailed
simulation (ground truth), statistical simulation, and the first-order
model — and checks that both approximations stay first-order accurate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ProcessorConfig
from repro.core.model import FirstOrderModel
from repro.experiments.common import (
    BASELINE,
    BENCHMARK_ORDER,
    DEFAULT_TRACE_LENGTH,
    Claim,
    cached_trace,
    format_table,
    mean,
    WorkloadSpec,
    workload_for,
)
from repro.simulator.processor import DetailedSimulator
from repro.statsim.generator import statistical_simulate


@dataclass(frozen=True)
class ComparisonRow:
    benchmark: str
    detailed_cpi: float
    statsim_cpi: float
    model_cpi: float

    @property
    def statsim_error(self) -> float:
        return abs(self.statsim_cpi - self.detailed_cpi) / self.detailed_cpi

    @property
    def model_error(self) -> float:
        return abs(self.model_cpi - self.detailed_cpi) / self.detailed_cpi


@dataclass(frozen=True)
class ComparisonResult:
    rows: tuple[ComparisonRow, ...]

    def mean_statsim_error(self) -> float:
        return mean([r.statsim_error for r in self.rows])

    def mean_model_error(self) -> float:
        return mean([r.model_error for r in self.rows])

    def format(self) -> str:
        table = format_table(
            ("bench", "detailed CPI", "statsim CPI", "model CPI",
             "statsim err", "model err"),
            [
                (r.benchmark, r.detailed_cpi, r.statsim_cpi, r.model_cpi,
                 f"{r.statsim_error:.1%}", f"{r.model_error:.1%}")
                for r in self.rows
            ],
        )
        return (
            table
            + f"\nmean errors: statistical simulation "
            f"{self.mean_statsim_error():.1%}, first-order model "
            f"{self.mean_model_error():.1%}"
        )

    def checks(self) -> list[Claim]:
        return [
            Claim(
                "statistical simulation is first-order accurate",
                self.mean_statsim_error() < 0.15,
                f"mean error {self.mean_statsim_error():.1%}",
            ),
            Claim(
                "the model's accuracy is of the same order as "
                "statistical simulation (paper: 'overall accuracy is "
                "similar')",
                self.mean_model_error() < self.mean_statsim_error() + 0.10,
                f"model {self.mean_model_error():.1%} vs statsim "
                f"{self.mean_statsim_error():.1%}",
            ),
        ]


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_ORDER,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    config: ProcessorConfig = BASELINE,
    seed: int = 3,
    workload: WorkloadSpec | None = None,
) -> ComparisonResult:
    model = FirstOrderModel(config)
    rows = []
    for name in benchmarks:
        trace = cached_trace(workload_for(workload, name, trace_length))
        detailed = DetailedSimulator(config.all_real(),
                                     instrument=False).run(trace)
        statsim = statistical_simulate(trace, config, seed=seed)
        report = model.evaluate_trace(trace)
        rows.append(
            ComparisonRow(
                benchmark=name,
                detailed_cpi=detailed.cpi,
                statsim_cpi=statsim.cpi,
                model_cpi=report.cpi,
            )
        )
    return ComparisonResult(rows=tuple(rows))


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
