"""Figure 17 — the implications of increasing front-end pipeline depth.

Pure-model study (§6.1): one branch in five, 5% mispredicted.
(a) IPC versus front-end depth for issue widths 2/3/4/8 — deeper pipes
erode the advantage of wider issue.
(b) Absolute performance with the Sprangle & Carmean technology numbers
(8200 ps of front-end logic, 90 ps flip-flop overhead) — BIPS peaks at an
optimal depth (~55 stages at width 3 in the paper) that moves *shallower*
as issue width grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.trends import (
    DepthSweepPoint,
    optimal_depth,
    pipeline_depth_sweep,
)
from repro.experiments.common import Claim, format_table

DEPTHS = tuple(range(5, 101, 5))
ISSUE_WIDTHS = (2, 3, 4, 8)

#: the paper reproduces Sprangle & Carmean's ≈55-stage optimum at width 3
PAPER_OPTIMUM_WIDTH3 = 55


@dataclass(frozen=True)
class DepthSweepResult:
    sweeps: dict[int, list[DepthSweepPoint]]

    def optimum(self, width: int) -> DepthSweepPoint:
        return optimal_depth(self.sweeps[width])

    def format(self) -> str:
        headers = ("depth",) + tuple(
            f"IPC w={w}" for w in ISSUE_WIDTHS
        ) + tuple(f"BIPS w={w}" for w in ISSUE_WIDTHS)
        rows = []
        for i, depth in enumerate(DEPTHS):
            rows.append(
                (depth,)
                + tuple(round(self.sweeps[w][i].ipc, 2)
                        for w in ISSUE_WIDTHS)
                + tuple(round(self.sweeps[w][i].bips, 2)
                        for w in ISSUE_WIDTHS)
            )
        table = format_table(headers, rows)
        optima = ", ".join(
            f"w={w}: {self.optimum(w).pipeline_depth} stages"
            for w in ISSUE_WIDTHS
        )
        return table + "\noptimal depths: " + optima

    def checks(self) -> list[Claim]:
        opt = {w: self.optimum(w).pipeline_depth for w in ISSUE_WIDTHS}
        ipc_shallow = {w: self.sweeps[w][0].ipc for w in ISSUE_WIDTHS}
        ipc_deep = {w: self.sweeps[w][-1].ipc for w in ISSUE_WIDTHS}
        shallow_gain = ipc_shallow[8] / ipc_shallow[2]
        deep_gain = ipc_deep[8] / ipc_deep[2]
        return [
            Claim(
                "IPC falls monotonically with front-end depth",
                all(
                    all(a.ipc >= b.ipc for a, b in
                        zip(self.sweeps[w], self.sweeps[w][1:]))
                    for w in ISSUE_WIDTHS
                ),
                "all IPC series monotone non-increasing",
            ),
            Claim(
                "deep pipes erode the advantage of wider issue "
                "(Figure 17a)",
                deep_gain < 0.7 * shallow_gain,
                f"width-8:width-2 IPC ratio {shallow_gain:.2f} at depth "
                f"{DEPTHS[0]} vs {deep_gain:.2f} at depth {DEPTHS[-1]}",
            ),
            Claim(
                "optimal depth at width 3 is near the paper's ~55 stages",
                0.6 * PAPER_OPTIMUM_WIDTH3 <= opt[3]
                <= 1.4 * PAPER_OPTIMUM_WIDTH3,
                f"optimum {opt[3]} stages",
            ),
            Claim(
                "wider issue prefers shallower pipelines (Figure 17b, "
                "also observed by Hartstein & Puzak)",
                opt[8] <= opt[3] <= opt[2],
                f"optima: w=2 {opt[2]}, w=3 {opt[3]}, w=8 {opt[8]}",
            ),
        ]


def run(
    depths: tuple[int, ...] = DEPTHS,
    issue_widths: tuple[int, ...] = ISSUE_WIDTHS,
) -> DepthSweepResult:
    return DepthSweepResult(
        sweeps=pipeline_depth_sweep(depths, issue_widths)
    )


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
