"""In-text validation experiments (paper §4.1 and §4.3).

Besides its numbered figures, the paper validates two modeling
assumptions with measurements quoted in prose; the detailed simulator's
instrumentation reproduces both:

* §4.1 — "detailed simulations … showed that there are only 1.3 useful
  instructions left in the window when a mispredicted branch issues
  (averaged over all benchmarks); gap is the only outlier with 8" —
  justifying the assumption that the branch is effectively the oldest
  instruction when it resolves (full drain before redirect).

* §4.3 — "the ROB fills and blocks dispatch in virtually every case.
  After 200 cycles, the window is less than half full (except for vpr
  …)" and "when a load misses there are 9 instructions ahead of it in
  the ROB" (outliers gap, twolf, vpr) — justifying modeling the long-miss
  penalty as ΔD with rob_fill ≈ 0 and retirement (not the window) as the
  binding structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ProcessorConfig
from repro.experiments.common import (
    BASELINE,
    BENCHMARK_ORDER,
    DEFAULT_TRACE_LENGTH,
    Claim,
    cached_trace,
    format_table,
    mean,
    WorkloadSpec,
    workload_for,
)
from repro.simulator.processor import DetailedSimulator


@dataclass(frozen=True)
class AssumptionRow:
    benchmark: str
    window_left_at_mispredict: float
    rob_ahead_at_long_miss: float
    dispatch_stall_rob: int
    dispatch_stall_window: int

    @property
    def rob_is_binding(self) -> bool:
        """True when dispatch stalls on the full ROB more often than on
        the full window (the paper's §4.3 finding)."""
        return self.dispatch_stall_rob >= self.dispatch_stall_window


@dataclass(frozen=True)
class AssumptionsResult:
    rows: tuple[AssumptionRow, ...]
    window_size: int
    rob_size: int

    def row(self, benchmark: str) -> AssumptionRow:
        for r in self.rows:
            if r.benchmark == benchmark:
                return r
        raise KeyError(benchmark)

    def format(self) -> str:
        return format_table(
            ("bench", "win left @misp", "rob ahead @long miss",
             "stalls: rob", "stalls: window"),
            [
                (r.benchmark, round(r.window_left_at_mispredict, 1),
                 round(r.rob_ahead_at_long_miss, 1),
                 r.dispatch_stall_rob, r.dispatch_stall_window)
                for r in self.rows
            ],
        )

    def checks(self) -> list[Claim]:
        win_left = [r.window_left_at_mispredict for r in self.rows]
        binding = [r for r in self.rows if r.benchmark != "vpr"]
        with_misses = [
            r for r in self.rows if r.rob_ahead_at_long_miss > 0
        ]
        claims = [
            Claim(
                "few useful instructions remain when a mispredicted "
                "branch issues (paper: 1.3 on average; our machine "
                "drains to single digits)",
                mean(win_left) < 0.25 * self.window_size,
                f"mean {mean(win_left):.1f} of {self.window_size} slots",
            ),
            Claim(
                "the ROB, not the window, is the binding structure "
                "during stalls for most benchmarks (vpr excepted, as in "
                "the paper)",
                sum(r.rob_is_binding for r in binding)
                >= 0.7 * len(binding),
                f"{sum(r.rob_is_binding for r in binding)}/{len(binding)} "
                "benchmarks ROB-bound",
            ),
        ]
        if with_misses:
            ahead = [r.rob_ahead_at_long_miss for r in with_misses]
            claims.append(
                Claim(
                    "missing loads are old relative to the ROB size when "
                    "they issue (paper: 9 of 128 ahead), so rob_fill ≈ 0 "
                    "is tenable",
                    mean(ahead) < 0.6 * self.rob_size,
                    f"mean {mean(ahead):.1f} of {self.rob_size} slots "
                    "ahead",
                )
            )
        return claims


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_ORDER,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    config: ProcessorConfig = BASELINE,
    workload: WorkloadSpec | None = None,
) -> AssumptionsResult:
    rows = []
    for name in benchmarks:
        trace = cached_trace(workload_for(workload, name, trace_length))
        result = DetailedSimulator(config.all_real()).run(trace)
        instr = result.instrumentation
        assert instr is not None
        rows.append(
            AssumptionRow(
                benchmark=name,
                window_left_at_mispredict=(
                    instr.mean_window_left_at_mispredict
                ),
                rob_ahead_at_long_miss=instr.mean_rob_ahead_at_long_miss,
                dispatch_stall_rob=instr.dispatch_stall_rob,
                dispatch_stall_window=instr.dispatch_stall_window,
            )
        )
    return AssumptionsResult(
        rows=tuple(rows),
        window_size=config.window_size,
        rob_size=config.rob_size,
    )


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
