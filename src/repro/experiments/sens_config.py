"""Robustness: model accuracy across machine configurations.

The paper validates the model at one baseline (Figure 15) and then
*uses* it across wide configuration ranges (§6).  This experiment closes
that loop: it sweeps front-end depth, issue width and window size and
checks that the model keeps tracking the detailed simulator away from
the baseline — both in absolute error and in the *direction* of every
configuration change (the property design-space exploration relies on).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.model import FirstOrderModel
from repro.experiments.common import (
    BASELINE,
    DEFAULT_TRACE_LENGTH,
    Claim,
    WorkloadSpec,
    cached_trace,
    format_table,
    mean,
    workload_for,
)
from repro.runner import run_units
from repro.spec import MachineSpec, RunSpec, SweepSpec

#: a diverse trio: mid-ILP, low-ILP/high-latency, memory-bound
BENCHMARKS = ("gzip", "vpr", "mcf")

#: the swept grid (each axis varied around the baseline)
DEPTHS = (3, 5, 9, 15)
WIDTHS = (2, 4, 8)
WINDOWS = (16, 48, 96)


@dataclass(frozen=True)
class ConfigPoint:
    benchmark: str
    pipeline_depth: int
    width: int
    window_size: int
    model_cpi: float
    sim_cpi: float

    @property
    def error(self) -> float:
        return abs(self.model_cpi - self.sim_cpi) / self.sim_cpi


@dataclass(frozen=True)
class ConfigSweepResult:
    points: tuple[ConfigPoint, ...]

    def mean_error(self) -> float:
        return mean([p.error for p in self.points])

    def worst_error(self) -> float:
        return max(p.error for p in self.points)

    def format(self) -> str:
        table = format_table(
            ("bench", "depth", "width", "window", "model", "sim", "err"),
            [
                (p.benchmark, p.pipeline_depth, p.width, p.window_size,
                 p.model_cpi, p.sim_cpi, f"{p.error:.0%}")
                for p in self.points
            ],
        )
        return (
            table + f"\nmean |error| {self.mean_error():.1%}, worst "
            f"{self.worst_error():.1%} over {len(self.points)} points"
        )

    def _direction_agreement(self, axis: str) -> float:
        """Fraction of same-benchmark axis steps where model and
        simulator move the same way."""
        agree = total = 0
        by_key: dict[tuple, list[ConfigPoint]] = {}
        for p in self.points:
            key = {
                "pipeline_depth": (p.benchmark, p.width, p.window_size),
                "width": (p.benchmark, p.pipeline_depth, p.window_size),
                "window_size": (p.benchmark, p.pipeline_depth, p.width),
            }[axis]
            by_key.setdefault(key, []).append(p)
        for pts in by_key.values():
            pts = sorted(pts, key=lambda p: getattr(p, axis))
            for a, b in zip(pts, pts[1:]):
                dm = b.model_cpi - a.model_cpi
                ds = b.sim_cpi - a.sim_cpi
                if abs(ds) < 1e-3 or abs(dm) < 1e-3:
                    continue  # flat steps carry no direction signal
                total += 1
                agree += (dm > 0) == (ds > 0)
        return agree / total if total else 1.0

    def checks(self) -> list[Claim]:
        claims = [
            Claim(
                "the model stays first-order accurate away from the "
                "baseline",
                self.mean_error() < 0.15 and self.worst_error() < 0.35,
                f"mean {self.mean_error():.1%}, worst "
                f"{self.worst_error():.1%}",
            )
        ]
        for axis in ("pipeline_depth", "width", "window_size"):
            agreement = self._direction_agreement(axis)
            claims.append(
                Claim(
                    f"model and simulator agree on the direction of "
                    f"{axis} changes",
                    agreement >= 0.85,
                    f"{agreement:.0%} of steps agree",
                )
            )
        return claims


def run(
    benchmarks: tuple[str, ...] = BENCHMARKS,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    depths: tuple[int, ...] = DEPTHS,
    widths: tuple[int, ...] = WIDTHS,
    windows: tuple[int, ...] = WINDOWS,
    workload: WorkloadSpec | None = None,
) -> ConfigSweepResult:
    if not benchmarks:
        return ConfigSweepResult(points=())
    sweep = SweepSpec(
        base=RunSpec(
            workload=workload_for(workload, benchmarks[0], trace_length),
            machine=MachineSpec.from_config(BASELINE),
        ),
        benchmarks=benchmarks,
        axes={
            "machine.pipeline_depth": depths,
            "machine.width": widths,
            "machine.window_size": windows,
        },
    )
    # rob_size rides the window axis (derived, so not a sweep axis)
    units = [
        dataclasses.replace(
            spec,
            machine=dataclasses.replace(
                spec.machine,
                rob_size=max(BASELINE.rob_size,
                             2 * spec.machine.window_size),
            ),
        )
        for spec in sweep.expand()
    ]
    # every grid point shares its benchmark's trace and annotations (the
    # functional pass is config-independent along these axes), so the
    # artifact cache collapses the sweep's front-end work to one pass
    # per benchmark
    sims, _ = run_units(units)
    points = []
    for unit_result in sims:
        unit = unit_result.unit
        cfg = unit.config
        trace = cached_trace(
            workload_for(workload, unit.benchmark, trace_length))
        report = FirstOrderModel(cfg).evaluate_trace(trace)
        points.append(
            ConfigPoint(
                benchmark=unit.benchmark, pipeline_depth=cfg.pipeline_depth,
                width=cfg.width, window_size=cfg.window_size,
                model_cpi=report.cpi, sim_cpi=unit_result.result.cpi,
            )
        )
    return ConfigSweepResult(points=tuple(points))


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
