"""Co-run validation — the additive-penalty story under contention.

The paper validates the first-order model on one workload over a private
memory hierarchy.  This experiment asks the natural multi-programmed
follow-up: when two workloads share the unified L2
(:mod:`repro.corun`), each sees an *elevated* long-miss rate — does the
model, fed those contention-elevated miss-event profiles, still predict
each workload's co-run CPI within the solo validation band?  Three
agreement bands per workload: solo CPI (private L2), co-run CPI
(detailed simulation on the contended annotations) and the model's
prediction from the contended profile.

One pair mixes a synthetic workload with an ingested foreign trace
(``examples/sample_trace.csv``) when the file is available, exercising
the scenario space the ingestion layer opened.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.config import ProcessorConfig
from repro.experiments.common import (
    BASELINE,
    DEFAULT_TRACE_LENGTH,
    Claim,
    WorkloadSpec,
    cached_trace,
    format_table,
    workload_for,
)

#: co-scheduled pairs (synthetic×synthetic); chosen to mix a low-miss
#: workload (gzip, vpr) with a memory-bound one (mcf, twolf)
PAIRS = (("gzip", "mcf"), ("vpr", "twolf"))

#: |model - simulated| co-run CPI band — the *solo* validation band of
#: val_additivity, reused unchanged: contention must not cost accuracy
TOTAL_BAND = 0.35

#: default per-workload length: half the solo validation length, so the
#: *merged* co-run puts the same total footprint on the shared L2 as
#: one solo validation run.  This keeps the contended long-miss rates
#: inside the envelope the paper validates the model in; far outside it
#: (long/ld >~ 0.05) the additive first-order model underpredicts badly
#: even for SOLO runs (a 30k vpr over a 32 KB private L2 simulates at
#: CPI 3.8 vs model 1.8), so larger lengths measure the model's known
#: breakdown regime, not the contention subsystem.
CORUN_TRACE_LENGTH = DEFAULT_TRACE_LENGTH // 2

#: the foreign trace for the synthetic×ingested pair
INGEST_SAMPLE = Path(__file__).resolve().parents[3] / "examples" \
    / "sample_trace.csv"


@dataclass(frozen=True)
class CoRunRow:
    """One workload's three agreement numbers inside one co-run."""

    benchmark: str
    solo_cpi: float
    corun_cpi: float
    model_cpi: float
    solo_rate: float
    corun_rate: float
    stack_residual: float

    @property
    def model_error(self) -> float:
        return self.model_cpi - self.corun_cpi

    @property
    def cpi_degradation(self) -> float:
        return self.corun_cpi - self.solo_cpi


@dataclass(frozen=True)
class CoRunPair:
    """One evaluated co-run: its rows plus the shared-L2 reconciliation."""

    label: str
    rows: tuple[CoRunRow, ...]
    reconciled: bool
    content_key: str


@dataclass(frozen=True)
class CoRunValidationResult:
    pairs: tuple[CoRunPair, ...]
    skipped: tuple[str, ...] = ()

    def all_rows(self) -> list[CoRunRow]:
        return [row for pair in self.pairs for row in pair.rows]

    def format(self) -> str:
        out = format_table(
            ("pair / workload", "solo CPI", "corun CPI", "model CPI",
             "error", "dCPI", "dlong/ld"),
            [
                (f"{pair.label}: {row.benchmark}",
                 row.solo_cpi, row.corun_cpi, row.model_cpi,
                 row.model_error, row.cpi_degradation,
                 row.corun_rate - row.solo_rate)
                for pair in self.pairs
                for row in pair.rows
            ],
        )
        if self.skipped:
            out += "\n(skipped: " + "; ".join(self.skipped) + ")"
        return out

    def checks(self) -> list[Claim]:
        rows = self.all_rows()
        claims = [
            Claim(
                "shared-L2 contention elevates every workload's long-miss "
                "rate at or above its solo rate",
                all(r.corun_rate >= r.solo_rate for r in rows),
                "; ".join(f"{r.benchmark} {r.solo_rate:.4f}->"
                          f"{r.corun_rate:.4f}" for r in rows),
            ),
            Claim(
                "every workload's co-run CPI is at or above its solo CPI",
                all(r.corun_cpi >= r.solo_cpi for r in rows),
                "; ".join(f"{r.benchmark} {r.solo_cpi:.3f}->"
                          f"{r.corun_cpi:.3f}" for r in rows),
            ),
            Claim(
                "the model, fed contended miss-event profiles, predicts "
                f"each workload's co-run CPI within {TOTAL_BAND} CPI "
                "(the solo validation band)",
                all(abs(r.model_error) < TOTAL_BAND for r in rows),
                f"worst |model - sim| "
                f"{max(abs(r.model_error) for r in rows):.3f}",
            ),
            Claim(
                "each workload's measured co-run CPI stack sums to its "
                "simulated CPI",
                all(r.stack_residual < 1e-9 for r in rows),
                f"worst residual "
                f"{max(r.stack_residual for r in rows):.2e}",
            ),
            Claim(
                "shared-L2 counters reconcile with the per-workload sums "
                "in every co-run",
                all(pair.reconciled for pair in self.pairs),
                ", ".join(f"{p.label}: "
                          f"{'ok' if p.reconciled else 'MISMATCH'}"
                          for p in self.pairs),
            ),
        ]
        return claims


def _ingested_workload(trace_length: int) -> WorkloadSpec | None:
    """The sample foreign trace as a workload, or ``None`` if absent.

    The served length is whatever the file actually holds (the sample
    carries 5000 records), clamped to the requested experiment length.
    """
    if not INGEST_SAMPLE.is_file():
        return None
    from repro.spec import SpecError

    try:
        probe = WorkloadSpec(f"ingest:{INGEST_SAMPLE}", length=trace_length)
        trace = cached_trace(probe)
    except (SpecError, OSError):
        return None
    return WorkloadSpec(probe.benchmark, len(trace))


def _pair_result(spec, label: str) -> CoRunPair:
    from repro.corun import run_corun

    payload = run_corun(spec)
    rows = tuple(
        CoRunRow(
            benchmark=row["benchmark"][:28],
            solo_cpi=row["solo"]["cpi"],
            corun_cpi=row["corun"]["cpi"],
            model_cpi=row["model"]["cpi"],
            solo_rate=row["solo"]["long_miss_rate"],
            corun_rate=row["corun"]["long_miss_rate"],
            stack_residual=abs(row["corun"]["stack_total"]
                               - row["corun"]["cpi"]),
        )
        for row in payload["workloads"]
    )
    return CoRunPair(
        label=label,
        rows=rows,
        reconciled=bool(payload["shared_l2"]["reconciled"]),
        content_key=payload["content_key"],
    )


def run(
    pairs: tuple[tuple[str, str], ...] = PAIRS,
    trace_length: int = CORUN_TRACE_LENGTH,
    config: ProcessorConfig = BASELINE,
    workload: WorkloadSpec | None = None,
) -> CoRunValidationResult:
    from repro.spec import CoRunSpec, MachineSpec

    machine = MachineSpec.from_config(config)
    results: list[CoRunPair] = []
    skipped: list[str] = []
    for a, b in pairs:
        spec = CoRunSpec(
            workloads=(workload_for(workload, a, trace_length),
                       workload_for(workload, b, trace_length)),
            machine=machine,
        )
        results.append(_pair_result(spec, f"{a}+{b}"))

    ingested = _ingested_workload(trace_length)
    if ingested is None:
        skipped.append("synthetic x ingested pair "
                       f"({INGEST_SAMPLE.name} unavailable)")
    else:
        spec = CoRunSpec(
            workloads=(workload_for(workload, "gzip", trace_length),
                       ingested),
            machine=machine,
        )
        results.append(_pair_result(spec, "gzip+ingested"))
    return CoRunValidationResult(pairs=tuple(results),
                                 skipped=tuple(skipped))


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
