"""Figure 11 — instruction-cache miss penalty ≈ ΔI, independent of depth.

Simulate with a real I-cache (ideal D-cache and predictor) at 5 and 9
front-end stages, divide the extra cycles by the I-miss count.  The
paper's observations: the penalty is approximately the L2 access delay
(8 cycles) and does not change with front-end depth.  Benchmarks with a
negligible number of misses are skipped, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ProcessorConfig
from repro.experiments.common import (
    BASELINE,
    BENCHMARK_ORDER,
    DEFAULT_TRACE_LENGTH,
    Claim,
    cached_trace,
    format_table,
    WorkloadSpec,
    workload_for,
)
from repro.simulator.processor import DetailedSimulator

DEPTHS = (5, 9)

#: benchmarks with fewer misses than this are reported as negligible
MIN_MISSES = 50


@dataclass(frozen=True)
class ICachePenaltyRow:
    benchmark: str
    misses: int
    penalties: dict[int, float]


@dataclass(frozen=True)
class ICachePenaltyResult:
    rows: tuple[ICachePenaltyRow, ...]
    skipped: tuple[str, ...]
    miss_delay: int

    def format(self) -> str:
        table = format_table(
            ("bench", "misses") + tuple(f"depth {d}" for d in DEPTHS),
            [
                (r.benchmark, r.misses)
                + tuple(round(r.penalties[d], 1) for d in DEPTHS)
                for r in self.rows
            ],
        )
        if self.skipped:
            table += (
                "\nnegligible misses (not shown, as in the paper): "
                + ", ".join(self.skipped)
            )
        return table

    def checks(self) -> list[Claim]:
        if not self.rows:
            return [Claim("at least one benchmark has I-cache misses",
                          False, "none found")]
        shallow = [r.penalties[DEPTHS[0]] for r in self.rows]
        deltas = [
            abs(r.penalties[DEPTHS[1]] - r.penalties[DEPTHS[0]])
            for r in self.rows
        ]
        return [
            Claim(
                "penalty per I-miss ≈ the L2 access delay "
                f"(paper: ≈ {self.miss_delay} cycles)",
                all(0.5 * self.miss_delay <= p <= 1.5 * self.miss_delay
                    for p in shallow),
                f"range {min(shallow):.1f}–{max(shallow):.1f} cycles",
            ),
            Claim(
                "penalty is independent of front-end depth "
                "(paper observation 1 of §4.2)",
                max(deltas) < 0.4 * self.miss_delay,
                f"max |depth-9 − depth-5| = {max(deltas):.1f} cycles",
            ),
        ]


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_ORDER,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    config: ProcessorConfig = BASELINE,
    depths: tuple[int, ...] = DEPTHS,
    workload: WorkloadSpec | None = None,
) -> ICachePenaltyResult:
    rows = []
    skipped = []
    for name in benchmarks:
        trace = cached_trace(workload_for(workload, name, trace_length))
        penalties: dict[int, float] = {}
        misses = 0
        for depth in depths:
            cfg = config.with_depth(depth)
            real_ic = DetailedSimulator(
                cfg.only_real_icache(), instrument=False
            ).run(trace)
            ideal = DetailedSimulator(
                cfg.all_ideal(), instrument=False
            ).run(trace)
            misses = real_ic.icache_short_count + real_ic.icache_long_count
            if misses == 0:
                penalties[depth] = 0.0
            else:
                penalties[depth] = real_ic.penalty_per_event(ideal, misses)
        if misses < MIN_MISSES:
            skipped.append(name)
        else:
            rows.append(
                ICachePenaltyRow(
                    benchmark=name, misses=misses, penalties=penalties
                )
            )
    return ICachePenaltyResult(
        rows=tuple(rows),
        skipped=tuple(skipped),
        miss_delay=config.hierarchy.l2_latency,
    )


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
