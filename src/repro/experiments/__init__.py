"""Paper-reproduction experiments, one module per figure/table.

Every module exposes ``run(...) -> <Result>`` where the result offers
``format()`` (the paper-style rows) and ``checks()`` (the paper's
qualitative claims evaluated on the measured data).  Modules are also
runnable as scripts: ``python -m repro.experiments.fig15_overall``.

| module                | paper artifact |
|-----------------------|----------------|
| fig02_independence    | Figure 2  — miss-event independence |
| tab01_powerlaw        | Table 1   — power-law parameters |
| fig04_iw_curves       | Figure 4  — IW curves, all benchmarks |
| fig05_fit             | Figure 5  — log-log fit quality |
| fig06_limited_width   | Figure 6  — issue-width saturation |
| fig08_transient       | Figure 8  — misprediction transient |
| fig09_brpenalty       | Figure 9  — branch penalty, 5 vs 9 stages |
| fig11_icache          | Figure 11 — I-miss penalty ≈ ΔI |
| fig14_dcache          | Figure 14 — long-miss penalty vs Eq. 8 |
| fig15_overall         | Figure 15 — model vs simulation CPI |
| fig16_stack           | Figure 16 — CPI stacks |
| fig17_pipeline_depth  | Figure 17 — pipeline-depth trends |
| fig18_issue_width     | Figure 18 — prediction vs issue width |
| fig19_ramp            | Figure 19 — inter-misprediction ramp |
| val_assumptions       | §4.1/§4.3 in-text assumption checks |
| val_additivity        | Eq. 1 — measured vs modeled CPI stack |
| val_corun             | shared-L2 co-runs — model accuracy under contention |
| cmp_statsim           | §1.2 — model vs statistical simulation |
| sens_config           | robustness across machine configurations |
| sens_predictor        | robustness across predictor quality |
| sens_length           | stability of inputs/accuracy vs trace length |
"""

from repro.experiments import (
    cmp_statsim,
    sens_config,
    sens_length,
    sens_predictor,
    fig02_independence,
    tab01_powerlaw,
    fig04_iw_curves,
    fig05_fit,
    fig06_limited_width,
    fig08_transient,
    fig09_brpenalty,
    fig11_icache,
    fig14_dcache,
    fig15_overall,
    fig16_stack,
    fig17_pipeline_depth,
    fig18_issue_width,
    fig19_ramp,
    val_additivity,
    val_assumptions,
    val_corun,
)
from repro.experiments.common import Claim, cached_trace, format_table
from repro.experiments.runner import Report, run_all

#: all experiment modules in paper order
ALL_EXPERIMENTS = (
    fig02_independence,
    tab01_powerlaw,
    fig04_iw_curves,
    fig05_fit,
    fig06_limited_width,
    fig08_transient,
    fig09_brpenalty,
    fig11_icache,
    fig14_dcache,
    fig15_overall,
    fig16_stack,
    fig17_pipeline_depth,
    fig18_issue_width,
    fig19_ramp,
    val_assumptions,
    val_additivity,
    val_corun,
    cmp_statsim,
    sens_config,
    sens_length,
    sens_predictor,
)


def experiment_registry() -> dict:
    """Name → module map accepting both short and full experiment names.

    ``fig15`` and ``fig15_overall`` resolve to the same module; the CLI
    and the evaluation service share this single entry point.
    """
    return {
        m.__name__.split(".")[-1].split("_")[0]: m for m in ALL_EXPERIMENTS
    } | {
        m.__name__.split(".")[-1]: m for m in ALL_EXPERIMENTS
    }


__all__ = [
    "ALL_EXPERIMENTS",
    "Report",
    "experiment_registry",
    "run_all",
    "Claim",
    "cached_trace",
    "format_table",
] + [m.__name__.split(".")[-1] for m in ALL_EXPERIMENTS]
