"""Run every experiment and emit a consolidated report.

``python -m repro report`` (or :func:`run_all` programmatically) executes
each experiment module in paper order, collects the formatted tables and
claim verdicts, and renders one markdown document — the machinery behind
EXPERIMENTS.md, so the paper-vs-measured record can be regenerated after
any change.
"""

from __future__ import annotations

import inspect
import logging
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.experiments.common import Claim, WorkloadSpec

_log = logging.getLogger(__name__)


@dataclass(frozen=True)
class ExperimentOutcome:
    """One experiment's run record."""

    name: str
    title: str
    table: str
    claims: tuple[Claim, ...]
    seconds: float

    @property
    def passed(self) -> bool:
        return all(c.holds for c in self.claims)


@dataclass(frozen=True)
class Report:
    outcomes: tuple[ExperimentOutcome, ...]

    @property
    def all_passed(self) -> bool:
        return all(o.passed for o in self.outcomes)

    def failures(self) -> list[tuple[str, Claim]]:
        return [
            (o.name, c)
            for o in self.outcomes
            for c in o.claims
            if not c.holds
        ]

    def to_markdown(self) -> str:
        lines = [
            "# Experiment report",
            "",
            f"{len(self.outcomes)} experiments, "
            f"{sum(len(o.claims) for o in self.outcomes)} claims, "
            f"{len(self.failures())} failures.",
            "",
        ]
        for o in self.outcomes:
            lines.append(f"## {o.title} ({o.seconds:.1f}s)")
            lines.append("")
            lines.append("```")
            lines.append(o.table)
            lines.append("```")
            lines.append("")
            for claim in o.claims:
                mark = "✅" if claim.holds else "❌"
                lines.append(f"- {mark} {claim.description} — "
                             f"{claim.detail}")
            lines.append("")
        return "\n".join(lines)


def _title(module) -> str:
    doc = (module.__doc__ or module.__name__).strip().splitlines()[0]
    return doc.rstrip(".")


def run_all(
    modules: Iterable | None = None,
    progress: Callable[[str], None] | None = None,
    workload: WorkloadSpec | None = None,
) -> Report:
    """Execute ``modules`` (default: every registered experiment).

    ``workload`` is a :class:`repro.spec.WorkloadSpec` template applied
    to every experiment that accepts one (its length and seed override
    the experiment defaults; the benchmark axis stays per-experiment).
    Experiments without a ``workload`` parameter — the trace-free ones —
    run unchanged.
    """
    if modules is None:
        from repro.experiments import ALL_EXPERIMENTS

        modules = ALL_EXPERIMENTS
    outcomes = []
    for module in modules:
        name = module.__name__.split(".")[-1]
        if progress:
            progress(name)
        kwargs = {}
        if (workload is not None
                and "workload" in inspect.signature(module.run).parameters):
            kwargs["workload"] = workload
        start = time.perf_counter()
        result = module.run(**kwargs)
        elapsed = time.perf_counter() - start
        _log.info("experiment %s finished in %.2fs", name, elapsed)
        outcomes.append(
            ExperimentOutcome(
                name=name,
                title=_title(module),
                table=result.format(),
                claims=tuple(result.checks()),
                seconds=elapsed,
            )
        )
    return Report(outcomes=tuple(outcomes))
