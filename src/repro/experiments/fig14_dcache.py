"""Figure 14 — penalty per long data-cache miss: simulation vs Eq. 8.

Simulation side: real D-cache with everything else ideal, compared
against an otherwise-identical run in which every long miss is demoted to
a short miss (L2 latency) — the cycle difference divided by the long-miss
count isolates exactly the long-miss penalty, the way the paper's 128 KB
single-level experiment does (short misses would otherwise pollute the
quotient through their IW-characteristic effect).  Model side: the
isolated penalty ΔD scaled by the overlap factor Σ f_LDM(i)/i measured
from the trace (Eq. 8).  The paper notes this is the least accurate part
of the model ("reasonably close, although not as close as other parts").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ProcessorConfig
from repro.core.dcache_penalty import DCachePenaltyModel
from repro.experiments.common import (
    BASELINE,
    BENCHMARK_ORDER,
    DEFAULT_TRACE_LENGTH,
    Claim,
    cached_trace,
    format_table,
    mean,
    WorkloadSpec,
    workload_for,
)
from repro.frontend.collector import CollectorConfig, MissEventCollector
from repro.simulator.processor import DetailedSimulator

#: benchmarks with fewer long misses than this are skipped (per-miss
#: penalty estimates are unstable below it)
MIN_MISSES = 30


@dataclass(frozen=True)
class DCachePenaltyRow:
    benchmark: str
    long_misses: int
    simulated_penalty: float
    model_penalty: float
    overlap_factor: float

    @property
    def relative_error(self) -> float:
        if self.simulated_penalty == 0:
            return 0.0
        return (
            abs(self.model_penalty - self.simulated_penalty)
            / self.simulated_penalty
        )


@dataclass(frozen=True)
class DCachePenaltyResult:
    rows: tuple[DCachePenaltyRow, ...]
    skipped: tuple[str, ...]
    miss_delay: int

    def format(self) -> str:
        table = format_table(
            ("bench", "long misses", "sim penalty", "model penalty",
             "overlap", "err"),
            [
                (r.benchmark, r.long_misses, round(r.simulated_penalty, 1),
                 round(r.model_penalty, 1), round(r.overlap_factor, 2),
                 f"{r.relative_error:.0%}")
                for r in self.rows
            ],
        )
        if self.skipped:
            table += "\nnegligible long misses: " + ", ".join(self.skipped)
        return table

    def checks(self) -> list[Claim]:
        if not self.rows:
            return [Claim("at least one benchmark has long misses",
                          False, "none found")]
        errors = [r.relative_error for r in self.rows]
        return [
            Claim(
                "per-miss penalties are bounded by the isolated delay "
                f"(ΔD = {self.miss_delay})",
                all(r.simulated_penalty <= 1.2 * self.miss_delay
                    for r in self.rows),
                f"max sim penalty {max(r.simulated_penalty for r in self.rows):.0f}",
            ),
            Claim(
                "the Eq. 8 overlap model tracks simulation (paper: "
                "'reasonably close, although not as close as other parts')",
                mean(errors) < 0.5,
                f"mean relative error {mean(errors):.0%}",
            ),
            Claim(
                "overlapping misses reduce the per-miss penalty below ΔD",
                all(
                    r.simulated_penalty < self.miss_delay
                    for r in self.rows
                    if r.overlap_factor < 0.8
                ),
                "clustered benchmarks pay less than the isolated delay",
            ),
        ]


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_ORDER,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    config: ProcessorConfig = BASELINE,
    workload: WorkloadSpec | None = None,
) -> DCachePenaltyResult:
    rows = []
    skipped = []
    dcache_cfg = config.only_real_dcache()
    collector = MissEventCollector(
        CollectorConfig(hierarchy=dcache_cfg.hierarchy,
                        ideal_predictor=True)
    )
    model = DCachePenaltyModel(
        miss_delay=config.hierarchy.memory_latency, rob_size=config.rob_size
    )
    for name in benchmarks:
        trace = cached_trace(workload_for(workload, name, trace_length))
        sim = DetailedSimulator(dcache_cfg, instrument=False)
        annotations = sim.annotate(trace)
        real_dc = sim.run(trace, annotations)
        if real_dc.dcache_long_count < MIN_MISSES:
            skipped.append(name)
            continue
        # baseline: identical machine and short-miss behaviour, but every
        # long miss demoted to a short miss — isolates the long-miss cost
        import numpy as np

        from repro.frontend.events import EventAnnotations

        demoted = EventAnnotations(
            fetch_stall=annotations.fetch_stall,
            load_extra=np.where(
                annotations.long_miss,
                dcache_cfg.hierarchy.l2_latency,
                annotations.load_extra,
            ).astype(annotations.load_extra.dtype),
            long_miss=np.zeros_like(annotations.long_miss),
            mispredicted=annotations.mispredicted,
        )
        baseline = sim.run(trace, demoted)
        profile = collector.collect(trace)
        rows.append(
            DCachePenaltyRow(
                benchmark=name,
                long_misses=real_dc.dcache_long_count,
                simulated_penalty=real_dc.penalty_per_event(
                    baseline, real_dc.dcache_long_count
                ),
                model_penalty=model.penalty_from_profile(profile),
                overlap_factor=profile.overlap_factor(config.rob_size),
            )
        )
    return DCachePenaltyResult(
        rows=tuple(rows),
        skipped=tuple(skipped),
        miss_delay=config.hierarchy.memory_latency,
    )


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
