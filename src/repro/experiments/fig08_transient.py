"""Figure 8 — the isolated branch-misprediction transient.

The paper's canonical transient: square-law characteristic (alpha=1,
beta=0.5), issue width 4, five front-end stages.  The paper reads off
drain ≈ 2.1 cycles, ramp-up ≈ 2.7 cycles and pipeline fill ≈ 4.9 cycles
for a total penalty of ≈ 9.7 cycles, and notes the branch issues around
cycle 6 with ~1.4 instructions left in the window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.transient import BranchTransient, branch_transient
from repro.experiments.common import Claim
from repro.window.characteristic import IWCharacteristic

#: paper Figure 8 machine
PIPELINE_DEPTH = 5
ISSUE_WIDTH = 4
WINDOW_SIZE = 48

#: paper-reported components
PAPER_DRAIN = 2.1
PAPER_RAMP = 2.7
PAPER_PIPE = 4.9
PAPER_TOTAL = 9.7


@dataclass(frozen=True)
class TransientResult:
    transient: BranchTransient

    @property
    def drain_penalty(self) -> float:
        return self.transient.drain.penalty

    @property
    def ramp_penalty(self) -> float:
        return self.transient.ramp.penalty

    @property
    def total_penalty(self) -> float:
        return self.transient.total_penalty

    def format(self) -> str:
        lines = [
            f"drain penalty : {self.drain_penalty:5.2f} cycles (paper {PAPER_DRAIN})",
            f"pipeline fill : {self.transient.pipeline_depth:5.2f} cycles (paper {PAPER_PIPE})",
            f"ramp-up       : {self.ramp_penalty:5.2f} cycles (paper {PAPER_RAMP})",
            f"total         : {self.total_penalty:5.2f} cycles (paper {PAPER_TOTAL})",
            "",
            "per-cycle issue rates:",
            "  " + " ".join(
                f"{r:.2f}" for r in self.transient.issue_rate_timeline()[:24]
            ),
        ]
        return "\n".join(lines)

    def checks(self) -> list[Claim]:
        return [
            Claim(
                "drain penalty matches the paper's 2.1 cycles",
                abs(self.drain_penalty - PAPER_DRAIN) < 0.5,
                f"{self.drain_penalty:.2f} cycles",
            ),
            Claim(
                "ramp-up penalty matches the paper's 2.7 cycles",
                abs(self.ramp_penalty - PAPER_RAMP) < 0.7,
                f"{self.ramp_penalty:.2f} cycles",
            ),
            Claim(
                "total penalty ≈ 2x the front-end depth (paper: 9.7 vs 5)",
                1.6 * PIPELINE_DEPTH <= self.total_penalty
                <= 2.4 * PIPELINE_DEPTH,
                f"{self.total_penalty:.2f} cycles vs depth {PIPELINE_DEPTH}",
            ),
            Claim(
                "the mispredicted branch issues around cycle 6 with ~1.4 "
                "instructions in the window",
                5 <= self.transient.drain.cycles <= 7,
                f"drain lasted {self.transient.drain.cycles} cycles, "
                f"{self.transient.drain.final_window + self.transient.drain.rates[-1]:.1f} "
                "instructions at the last issue",
            ),
        ]


def run(
    pipeline_depth: int = PIPELINE_DEPTH,
    issue_width: int = ISSUE_WIDTH,
    window_size: int = WINDOW_SIZE,
) -> TransientResult:
    characteristic = IWCharacteristic.square_law(issue_width=issue_width)
    return TransientResult(
        transient=branch_transient(
            characteristic, pipeline_depth, issue_width, window_size
        )
    )


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
