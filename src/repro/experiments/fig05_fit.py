"""Figure 5 — linear (log-log) fit quality for the illustrative benchmarks.

The paper overlays the measured IW curves of gzip, vortex and vpr with
their fitted lines and annotates the line equations
(``log2(I) = beta*log2(W) + log2(alpha)``).  Here we report the measured
and fitted values per window size and the worst-case fit deviation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    Claim,
    cached_trace,
    format_table,
    WorkloadSpec,
    workload_for,
)
from repro.window.iw_simulator import DEFAULT_WINDOW_SIZES, measure_iw_curve
from repro.window.powerlaw import PowerLawFit, fit_curve

#: the benchmarks of paper Figure 5
FIT_BENCHMARKS = ("gzip", "vortex", "vpr")


@dataclass(frozen=True)
class FitRow:
    benchmark: str
    window_size: int
    measured_ipc: float
    fitted_ipc: float

    @property
    def log2_error(self) -> float:
        return abs(
            math.log2(self.measured_ipc) - math.log2(self.fitted_ipc)
        )


@dataclass(frozen=True)
class FitResult:
    rows: tuple[FitRow, ...]
    fits: dict[str, PowerLawFit]

    def format(self) -> str:
        lines = []
        for name, fit in self.fits.items():
            slope, intercept = fit.log2_line()
            lines.append(
                f"{name}: log2(I) = {slope:.2f}*log2(W) + {intercept:.2f}"
            )
        lines.append("")
        lines.append(
            format_table(
                ("bench", "W", "measured I", "fitted I", "|log2 err|"),
                [
                    (r.benchmark, r.window_size, r.measured_ipc,
                     r.fitted_ipc, r.log2_error)
                    for r in self.rows
                ],
            )
        )
        return "\n".join(lines)

    def checks(self) -> list[Claim]:
        worst = max(r.log2_error for r in self.rows)
        return [
            Claim(
                "fitted lines track the measured curves (paper Figure 5)",
                worst < 0.35,
                f"worst |log2| deviation {worst:.2f} "
                "(≈ {:.0%} in linear terms)".format(2 ** worst - 1),
            ),
        ]


def run(
    benchmarks: tuple[str, ...] = FIT_BENCHMARKS,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    window_sizes: tuple[int, ...] = DEFAULT_WINDOW_SIZES,
    workload: WorkloadSpec | None = None,
) -> FitResult:
    rows: list[FitRow] = []
    fits: dict[str, PowerLawFit] = {}
    for name in benchmarks:
        trace = cached_trace(workload_for(workload, name, trace_length))
        curve = measure_iw_curve(trace, window_sizes)
        fit = fit_curve(curve)
        fits[name] = fit
        for point in curve.points:
            rows.append(
                FitRow(
                    benchmark=name,
                    window_size=point.window_size,
                    measured_ipc=point.ipc,
                    fitted_ipc=fit.ipc(point.window_size),
                )
            )
    return FitResult(rows=tuple(rows), fits=fits)


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
