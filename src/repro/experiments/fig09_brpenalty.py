"""Figure 9 — measured penalty per branch misprediction, 5 vs 9 stages.

The paper's recipe: simulate with ideal caches and a real gShare, then
with everything ideal, and divide the cycle difference by the number of
mispredictions.  Key observations encoded as checks: the penalty exceeds
the front-end depth (often substantially — up to ~2x), and deepening the
front end from 5 to 9 stages raises the penalty by roughly the added
depth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ProcessorConfig
from repro.experiments.common import (
    BASELINE,
    BENCHMARK_ORDER,
    DEFAULT_TRACE_LENGTH,
    Claim,
    cached_trace,
    format_table,
    mean,
    WorkloadSpec,
    workload_for,
)
from repro.simulator.processor import DetailedSimulator

#: the two front-end depths of paper Figure 9
DEPTHS = (5, 9)


@dataclass(frozen=True)
class BranchPenaltyRow:
    benchmark: str
    mispredictions: int
    #: penalty per misprediction, keyed by front-end depth
    penalties: dict[int, float]


@dataclass(frozen=True)
class BranchPenaltyResult:
    rows: tuple[BranchPenaltyRow, ...]

    def format(self) -> str:
        return format_table(
            ("bench", "mispredicts") + tuple(f"depth {d}" for d in DEPTHS),
            [
                (r.benchmark, r.mispredictions)
                + tuple(round(r.penalties[d], 1) for d in DEPTHS)
                for r in self.rows
            ],
        )

    def checks(self) -> list[Claim]:
        shallow = [r.penalties[DEPTHS[0]] for r in self.rows]
        deep = [r.penalties[DEPTHS[1]] for r in self.rows]
        extra = DEPTHS[1] - DEPTHS[0]
        depth_deltas = [d - s for s, d in zip(shallow, deep)]
        return [
            Claim(
                "penalty exceeds the front-end depth for every benchmark "
                "(paper: typically 6.4–10 cycles for 5 stages)",
                all(p > DEPTHS[0] for p in shallow),
                f"min {min(shallow):.1f}, max {max(shallow):.1f} cycles",
            ),
            Claim(
                "penalty can approach twice the front-end depth "
                "(paper: up to 14.7 for vpr)",
                max(shallow) > 1.5 * DEPTHS[0],
                f"max {max(shallow):.1f} cycles vs depth {DEPTHS[0]}",
            ),
            Claim(
                "deepening the pipeline by 4 stages adds ≈ 4 cycles of "
                "penalty",
                2.0 <= mean(depth_deltas) <= 6.0,
                f"mean delta {mean(depth_deltas):.1f} cycles "
                f"(added depth {extra})",
            ),
        ]


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_ORDER,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    config: ProcessorConfig = BASELINE,
    depths: tuple[int, ...] = DEPTHS,
    workload: WorkloadSpec | None = None,
) -> BranchPenaltyResult:
    rows = []
    for name in benchmarks:
        trace = cached_trace(workload_for(workload, name, trace_length))
        penalties: dict[int, float] = {}
        mispredictions = 0
        for depth in depths:
            cfg = config.with_depth(depth)
            real_bp = DetailedSimulator(
                cfg.only_real_predictor(), instrument=False
            ).run(trace)
            ideal = DetailedSimulator(
                cfg.all_ideal(), instrument=False
            ).run(trace)
            mispredictions = real_bp.misprediction_count
            if mispredictions == 0:
                penalties[depth] = 0.0
            else:
                penalties[depth] = real_bp.penalty_per_event(
                    ideal, mispredictions
                )
        rows.append(
            BranchPenaltyRow(
                benchmark=name,
                mispredictions=mispredictions,
                penalties=penalties,
            )
        )
    return BranchPenaltyResult(rows=tuple(rows))


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
