"""Stability: model inputs and accuracy versus trace length.

The paper's traces are long enough that statistics are converged; ours
are short, so this experiment quantifies how quickly the pipeline
stabilises: the power-law fit, the misprediction rate and the headline
model-vs-simulation error as functions of trace length.  A downstream
user choosing a budget can read the knee directly off this table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ProcessorConfig
from repro.core.model import FirstOrderModel
from repro.experiments.common import (
    BASELINE,
    Claim,
    WorkloadSpec,
    format_table,
)
from repro.frontend.collector import CollectorConfig, MissEventCollector
from repro.simulator.processor import DetailedSimulator
from repro.trace.synthetic import generate_trace
from repro.window.iw_simulator import measure_iw_curve
from repro.window.powerlaw import fit_curve

BENCHMARKS = ("gzip", "vpr")
LENGTHS = (4_000, 8_000, 16_000, 30_000, 60_000)


@dataclass(frozen=True)
class LengthRow:
    benchmark: str
    length: int
    beta: float
    misprediction_rate: float
    model_cpi: float
    sim_cpi: float

    @property
    def error(self) -> float:
        return abs(self.model_cpi - self.sim_cpi) / self.sim_cpi


@dataclass(frozen=True)
class LengthSweepResult:
    rows: tuple[LengthRow, ...]

    def series(self, benchmark: str) -> list[LengthRow]:
        return sorted(
            (r for r in self.rows if r.benchmark == benchmark),
            key=lambda r: r.length,
        )

    def format(self) -> str:
        return format_table(
            ("bench", "length", "beta", "misp rate", "model", "sim",
             "err"),
            [
                (r.benchmark, r.length, r.beta,
                 f"{r.misprediction_rate:.1%}", r.model_cpi, r.sim_cpi,
                 f"{r.error:.0%}")
                for r in self.rows
            ],
        )

    def checks(self) -> list[Claim]:
        claims = []
        for bench in {r.benchmark for r in self.rows}:
            series = self.series(bench)
            betas = [r.beta for r in series]
            spread = max(betas) - min(betas)
            claims.append(
                Claim(
                    f"{bench}: the power-law exponent is stable across "
                    "trace lengths",
                    spread < 0.1,
                    f"beta spread {spread:.3f}",
                )
            )
            long_half = [r.error for r in series[len(series) // 2:]]
            claims.append(
                Claim(
                    f"{bench}: model error stays first-order at every "
                    "length >= the default",
                    max(long_half) < 0.25,
                    f"max error {max(long_half):.0%} in the upper half",
                )
            )
        return claims


def run(
    benchmarks: tuple[str, ...] = BENCHMARKS,
    lengths: tuple[int, ...] = LENGTHS,
    config: ProcessorConfig = BASELINE,
    workload: WorkloadSpec | None = None,
) -> LengthSweepResult:
    collector = MissEventCollector(
        CollectorConfig(hierarchy=config.hierarchy)
    )
    model = FirstOrderModel(config)
    rows = []
    seed = workload.seed if workload is not None else None
    for name in benchmarks:
        for length in lengths:
            trace = generate_trace(name, length, seed=seed)
            profile = collector.collect(trace)
            fit = fit_curve(measure_iw_curve(trace))
            report = model.evaluate_trace(trace)
            sim = DetailedSimulator(config.all_real(),
                                    instrument=False).run(trace)
            rows.append(
                LengthRow(
                    benchmark=name, length=length, beta=fit.beta,
                    misprediction_rate=profile.misprediction_rate,
                    model_cpi=report.cpi, sim_cpi=sim.cpi,
                )
            )
    return LengthSweepResult(rows=tuple(rows))


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
