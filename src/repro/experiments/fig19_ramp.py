"""Figure 19 — per-cycle issue rate between two mispredicted branches.

Pure-model study (§6.2): with 100 instructions between mispredictions
(one in five instructions a branch, 5% mispredicted) and a five-stage
front end, plot the issue-rate ramp for widths 2/3/4/8.  The paper's
observation: with width 4 the IPC "barely reaches four" before the next
misprediction; with width 8 it "barely gets above six".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.trends import (
    inter_mispredict_timeline,
    mispredictions_per_instruction,
)
from repro.experiments.common import Claim, format_table

ISSUE_WIDTHS = (2, 3, 4, 8)
PIPELINE_DEPTH = 5

#: 1/ (0.2 branches * 5% mispredicted) = 100 instructions
INSTRUCTIONS_BETWEEN = 1.0 / mispredictions_per_instruction()


@dataclass(frozen=True)
class RampResult:
    #: per-cycle issue rates per width
    timelines: dict[int, list[float]]

    def peak(self, width: int) -> float:
        return max(self.timelines[width])

    def format(self) -> str:
        max_len = max(len(t) for t in self.timelines.values())
        headers = ("cycle",) + tuple(f"width {w}" for w in ISSUE_WIDTHS)
        rows = []
        for c in range(0, max_len, 2):
            rows.append(
                (c,)
                + tuple(
                    round(self.timelines[w][c], 2)
                    if c < len(self.timelines[w]) else ""
                    for w in ISSUE_WIDTHS
                )
            )
        peaks = ", ".join(
            f"w={w}: {self.peak(w):.1f}" for w in ISSUE_WIDTHS
        )
        return format_table(headers, rows) + "\npeak issue rates: " + peaks

    def checks(self) -> list[Claim]:
        return [
            Claim(
                "width 4 barely reaches its full issue rate before the "
                "next misprediction (paper: 'barely reaches four')",
                3.2 <= self.peak(4) <= 4.0,
                f"peak {self.peak(4):.1f}",
            ),
            Claim(
                "width 8 never gets close to eight (paper: 'barely gets "
                "above six')",
                5.0 <= self.peak(8) <= 7.2,
                f"peak {self.peak(8):.1f}",
            ),
            Claim(
                "narrow machines saturate early in the interval",
                self.peak(2) >= 1.95,
                f"width-2 peak {self.peak(2):.2f}",
            ),
            Claim(
                "issue is dead during the pipeline refill",
                all(
                    all(r == 0.0 for r in t[:PIPELINE_DEPTH])
                    for t in self.timelines.values()
                ),
                f"first {PIPELINE_DEPTH} cycles are zero for every width",
            ),
        ]


def run(
    issue_widths: tuple[int, ...] = ISSUE_WIDTHS,
    instructions_between: float = INSTRUCTIONS_BETWEEN,
    pipeline_depth: int = PIPELINE_DEPTH,
) -> RampResult:
    return RampResult(
        timelines={
            w: inter_mispredict_timeline(
                w, instructions_between, pipeline_depth
            )
            for w in issue_widths
        }
    )


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
