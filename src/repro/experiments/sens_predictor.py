"""Robustness: model accuracy across branch-predictor quality.

The branch term is the model's largest identified error source
(paper §7).  This experiment swaps the predictor through the whole
quality spectrum — static, bimodal, gShare, local-history, tournament,
ideal — and checks that (a) better predictors lower CPI in both the
model and the simulator, and (b) the model keeps tracking the simulator
at every quality level, not just the gShare baseline.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from repro.branch.gshare import GShare
from repro.branch.simple import Bimodal, StaticPredictor
from repro.branch.twolevel import LocalHistory, Tournament
from repro.config import ProcessorConfig
from repro.core.model import FirstOrderModel
from repro.experiments.common import (
    BASELINE,
    DEFAULT_TRACE_LENGTH,
    Claim,
    cached_trace,
    format_table,
    mean,
    WorkloadSpec,
    workload_for,
)
from repro.simulator.processor import DetailedSimulator

BENCHMARKS = ("gzip", "twolf", "parser")

#: predictor quality spectrum, roughly worst to best
PREDICTORS: tuple[tuple[str, Callable], ...] = (
    ("static-taken", lambda: StaticPredictor(taken=True)),
    ("bimodal", lambda: Bimodal(entries=2048)),
    ("gshare-8k", GShare),
    ("local", LocalHistory),
    ("tournament", Tournament),
)


@dataclass(frozen=True)
class PredictorRow:
    benchmark: str
    predictor: str
    misprediction_rate: float
    model_cpi: float
    sim_cpi: float

    @property
    def error(self) -> float:
        return abs(self.model_cpi - self.sim_cpi) / self.sim_cpi


@dataclass(frozen=True)
class PredictorSweepResult:
    rows: tuple[PredictorRow, ...]

    def mean_error(self) -> float:
        return mean([r.error for r in self.rows])

    def format(self) -> str:
        return format_table(
            ("bench", "predictor", "misp rate", "model", "sim", "err"),
            [
                (r.benchmark, r.predictor,
                 f"{r.misprediction_rate:.1%}", r.model_cpi, r.sim_cpi,
                 f"{r.error:.0%}")
                for r in self.rows
            ],
        ) + f"\nmean |error| {self.mean_error():.1%}"

    def checks(self) -> list[Claim]:
        # per benchmark: worse misprediction rate -> higher CPI, in both
        monotone_sim = monotone_model = 0
        total = 0
        for bench in {r.benchmark for r in self.rows}:
            rows = sorted(
                (r for r in self.rows if r.benchmark == bench),
                key=lambda r: r.misprediction_rate,
            )
            for a, b in zip(rows, rows[1:]):
                if b.misprediction_rate - a.misprediction_rate < 0.005:
                    continue
                total += 1
                monotone_sim += b.sim_cpi >= a.sim_cpi - 0.01
                monotone_model += b.model_cpi >= a.model_cpi - 0.01
        return [
            Claim(
                "more mispredictions mean higher CPI in the simulator",
                total == 0 or monotone_sim / total >= 0.9,
                f"{monotone_sim}/{total} ordered pairs",
            ),
            Claim(
                "the model reproduces the predictor-quality ordering",
                total == 0 or monotone_model / total >= 0.9,
                f"{monotone_model}/{total} ordered pairs",
            ),
            Claim(
                "the model tracks the simulator at every quality level",
                self.mean_error() < 0.15,
                f"mean |error| {self.mean_error():.1%}",
            ),
        ]


def run(
    benchmarks: tuple[str, ...] = BENCHMARKS,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    config: ProcessorConfig = BASELINE,
    workload: WorkloadSpec | None = None,
) -> PredictorSweepResult:
    rows = []
    for name in benchmarks:
        trace = cached_trace(workload_for(workload, name, trace_length))
        for label, factory in PREDICTORS:
            cfg = dataclasses.replace(config, predictor_factory=factory)
            report = FirstOrderModel(cfg).evaluate_trace(trace)
            sim_machine = DetailedSimulator(cfg, instrument=False)
            annotations = sim_machine.annotate(trace)
            sim = sim_machine.run(trace, annotations)
            branches = int(trace.branches.sum())
            rows.append(
                PredictorRow(
                    benchmark=name,
                    predictor=label,
                    misprediction_rate=(
                        int(annotations.mispredicted.sum()) / branches
                        if branches else 0.0
                    ),
                    model_cpi=report.cpi,
                    sim_cpi=sim.cpi,
                )
            )
    return PredictorSweepResult(rows=tuple(rows))


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
