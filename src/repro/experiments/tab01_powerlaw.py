"""Table 1 — power-law parameters of the IW characteristic.

For the three illustrative benchmarks the paper tabulates (gzip at the
middle of the Figure-4 curves, vortex and vpr at the extremes), fit
``I = alpha * W**beta`` to the unit-latency IW curve and report the mean
instruction latency (short data-cache misses folded in, as the paper's
"Avg. Lat." column does).

Paper values: gzip alpha 1.3 / beta 0.5 / L 1.5; vortex 1.2 / 0.7 / 1.6;
vpr 1.7 / 0.3 / 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ProcessorConfig
from repro.experiments.common import (
    BASELINE,
    DEFAULT_TRACE_LENGTH,
    Claim,
    cached_trace,
    format_table,
    WorkloadSpec,
    workload_for,
)
from repro.frontend.collector import CollectorConfig, MissEventCollector
from repro.window.iw_simulator import measure_iw_curve
from repro.window.powerlaw import fit_curve

#: the benchmarks of paper Table 1, with the paper's fitted values
PAPER_VALUES = {
    "gzip": (1.3, 0.5, 1.5),
    "vortex": (1.2, 0.7, 1.6),
    "vpr": (1.7, 0.3, 2.2),
}


@dataclass(frozen=True)
class PowerLawRow:
    benchmark: str
    alpha: float
    beta: float
    mean_latency: float
    r_squared: float


@dataclass(frozen=True)
class PowerLawResult:
    rows: tuple[PowerLawRow, ...]

    def row(self, benchmark: str) -> PowerLawRow:
        for r in self.rows:
            if r.benchmark == benchmark:
                return r
        raise KeyError(benchmark)

    def format(self) -> str:
        return format_table(
            ("bench", "alpha", "beta", "avg lat", "R^2",
             "paper a/b/L"),
            [
                (r.benchmark, r.alpha, r.beta, r.mean_latency, r.r_squared,
                 "/".join(str(v) for v in PAPER_VALUES.get(r.benchmark, ())))
                for r in self.rows
            ],
        )

    def checks(self) -> list[Claim]:
        claims = []
        gzip, vortex, vpr = (self.row(b) for b in ("gzip", "vortex", "vpr"))
        claims.append(
            Claim(
                "beta ordering matches the paper: vpr < gzip < vortex",
                vpr.beta < gzip.beta < vortex.beta,
                f"beta = {vpr.beta:.2f} / {gzip.beta:.2f} / {vortex.beta:.2f}",
            )
        )
        claims.append(
            Claim(
                "gzip beta is near the square law (paper 0.5)",
                0.35 <= gzip.beta <= 0.6,
                f"gzip beta {gzip.beta:.2f}",
            )
        )
        claims.append(
            Claim(
                "vpr has the highest mean latency (paper 2.2 vs 1.5/1.6)",
                vpr.mean_latency > gzip.mean_latency
                and vpr.mean_latency > vortex.mean_latency,
                f"L = vpr {vpr.mean_latency:.2f}, gzip "
                f"{gzip.mean_latency:.2f}, vortex {vortex.mean_latency:.2f}",
            )
        )
        claims.append(
            Claim(
                "power law is a good fit (log-log R^2 high)",
                all(r.r_squared > 0.9 for r in self.rows),
                "min R^2 "
                f"{min(r.r_squared for r in self.rows):.3f}",
            )
        )
        return claims


def run(
    benchmarks: tuple[str, ...] = tuple(PAPER_VALUES),
    trace_length: int = DEFAULT_TRACE_LENGTH,
    config: ProcessorConfig = BASELINE,
    workload: WorkloadSpec | None = None,
) -> PowerLawResult:
    rows = []
    collector = MissEventCollector(
        CollectorConfig(hierarchy=config.hierarchy)
    )
    for name in benchmarks:
        trace = cached_trace(workload_for(workload, name, trace_length))
        fit = fit_curve(measure_iw_curve(trace))
        profile = collector.collect(trace)
        latency = profile.effective_mean_latency(
            config.latencies, config.hierarchy.l2_latency
        )
        rows.append(
            PowerLawRow(
                benchmark=name, alpha=fit.alpha, beta=fit.beta,
                mean_latency=latency, r_squared=fit.r_squared,
            )
        )
    return PowerLawResult(rows=tuple(rows))


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
