"""Figure 18 — branch prediction must improve as the square of issue width.

Pure-model study (§6.2): for issue widths 4/8/16, the number of
instructions needed between mispredictions so that a target fraction of
time is spent issuing within 12.5% of the machine width.  The paper's
conclusion: doubling the width requires roughly *quadrupling* the
misprediction distance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.trends import required_mispredict_distance
from repro.experiments.common import Claim, format_table

ISSUE_WIDTHS = (4, 8, 16)
TARGET_FRACTIONS = (0.10, 0.20, 0.30, 0.40, 0.50)
PIPELINE_DEPTH = 5


@dataclass(frozen=True)
class IssueWidthResult:
    issue_widths: tuple[int, ...]
    target_fractions: tuple[float, ...]
    #: required distance, keyed by (width, fraction)
    distances: dict[tuple[int, float], float]

    def distance(self, width: int, fraction: float) -> float:
        return self.distances[(width, fraction)]

    def format(self) -> str:
        widths = self.issue_widths
        headers = ("% time near max",) + tuple(
            f"width {w}" for w in widths
        ) + tuple(
            f"ratio {b}/{a}" for a, b in zip(widths, widths[1:])
        )
        rows = []
        for frac in self.target_fractions:
            d = [self.distance(w, frac) for w in widths]
            rows.append(
                (f"{frac:.0%}",)
                + tuple(round(x) for x in d)
                + tuple(round(b / a, 1) for a, b in zip(d, d[1:]))
            )
        return format_table(headers, rows)

    def checks(self) -> list[Claim]:
        widths = self.issue_widths
        ratios = []
        for frac in self.target_fractions:
            for a, b in zip(widths, widths[1:]):
                scale = (b / a) ** 2  # square law: distance ~ width^2
                ratios.append(
                    (self.distance(b, frac) / self.distance(a, frac))
                    / scale
                )
        mean_ratio = sum(ratios) / len(ratios)
        return [
            Claim(
                "doubling the issue width requires ≈ 4x the distance "
                "between mispredictions (paper's square law)",
                0.6 <= mean_ratio <= 1.6,
                f"mean ratio vs the square law {mean_ratio:.2f}",
            ),
            Claim(
                "required distance grows with the target fraction",
                all(
                    self.distance(w, a) <= self.distance(w, b)
                    for w in widths
                    for a, b in zip(self.target_fractions,
                                    self.target_fractions[1:])
                ),
                "distances monotone in the target fraction",
            ),
            Claim(
                "wider machines need more instructions between "
                "mispredictions at every target",
                all(
                    self.distance(a, f) < self.distance(b, f)
                    for f in self.target_fractions
                    for a, b in zip(widths, widths[1:])
                ),
                "monotone in width",
            ),
        ]


def run(
    issue_widths: tuple[int, ...] = ISSUE_WIDTHS,
    target_fractions: tuple[float, ...] = TARGET_FRACTIONS,
    pipeline_depth: int = PIPELINE_DEPTH,
) -> IssueWidthResult:
    distances = {}
    for width in issue_widths:
        for frac in target_fractions:
            distances[(width, frac)] = required_mispredict_distance(
                width, frac, pipeline_depth
            )
    return IssueWidthResult(
        issue_widths=issue_widths,
        target_fractions=target_fractions,
        distances=distances,
    )


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
