"""Shared infrastructure for the paper-reproduction experiments.

Every module in :mod:`repro.experiments` reproduces one figure or table
of the paper.  They share trace generation (cached — several experiments
reuse the same benchmark traces), the baseline machine, and small
formatting helpers.  Each experiment returns a typed result object with
``rows()`` for tabular display and ``checks()`` returning the paper's
qualitative claims evaluated against the measured data.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.config import BASELINE, ProcessorConfig
from repro.runner.artifacts import trace_artifact
from repro.spec.specs import WorkloadSpec
from repro.trace.profiles import BENCHMARK_ORDER
from repro.trace.trace import Trace

#: default dynamic trace length for experiments; long enough for stable
#: statistics, short enough that the full suite runs in minutes
DEFAULT_TRACE_LENGTH = 30_000


@functools.lru_cache(maxsize=64)
def _cached_trace_resolved(benchmark: str, length: int, seed: int) -> Trace:
    """The in-memory layer, keyed by the *resolved* seed only.

    Normalizing before this cache fixes the old aliasing where
    ``seed=None`` and the explicitly-passed default seed occupied two
    ``lru_cache`` slots (and two disk probes) for the same trace.
    """
    return trace_artifact(benchmark, length, seed)


def cached_trace(workload: WorkloadSpec) -> Trace:
    """The trace a :class:`~repro.spec.WorkloadSpec` names, cached twice
    over.

    The in-memory ``lru_cache`` serves repeats within a process; beneath
    it, :func:`repro.runner.artifacts.trace_artifact` persists the trace
    on disk so repeated experiment invocations (and parallel runner
    workers) skip generation entirely.  A ``seed`` of ``None`` in the
    workload resolves to the benchmark profile's deterministic default
    before either cache is consulted.
    """
    if not isinstance(workload, WorkloadSpec):
        raise TypeError(
            "cached_trace takes a repro.spec.WorkloadSpec (the positional "
            "benchmark/length/seed form was removed)"
        )
    return _cached_trace_resolved(
        workload.benchmark, workload.length, workload.resolved_seed()
    )


def workload_for(
    workload: WorkloadSpec | None,
    benchmark: str,
    trace_length: int = DEFAULT_TRACE_LENGTH,
) -> WorkloadSpec:
    """The per-benchmark workload an experiment should run.

    Experiments take an optional :class:`WorkloadSpec` *template* (its
    length and seed apply to every benchmark they iterate over) plus a
    legacy ``trace_length`` scalar; this resolves one benchmark's
    effective workload from whichever the caller supplied.
    """
    if workload is not None:
        return workload.with_benchmark(benchmark)
    return WorkloadSpec(benchmark=benchmark, length=trace_length)


@dataclass(frozen=True)
class Claim:
    """One of the paper's qualitative claims, evaluated on measured data."""

    description: str
    holds: bool
    detail: str

    def __str__(self) -> str:
        mark = "PASS" if self.holds else "FAIL"
        return f"[{mark}] {self.description} — {self.detail}"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Plain-text table with right-aligned numeric columns."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) if _numeric(cell) else cell.ljust(widths[i])
                      for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def _numeric(cell: str) -> bool:
    try:
        float(cell.rstrip("%x"))
        return True
    except ValueError:
        return False


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("empty sequence")
    return sum(values) / len(values)


__all__ = [
    "BASELINE",
    "BENCHMARK_ORDER",
    "DEFAULT_TRACE_LENGTH",
    "ProcessorConfig",
    "WorkloadSpec",
    "cached_trace",
    "workload_for",
    "Claim",
    "format_table",
    "mean",
]
