"""Shared infrastructure for the paper-reproduction experiments.

Every module in :mod:`repro.experiments` reproduces one figure or table
of the paper.  They share trace generation (cached — several experiments
reuse the same benchmark traces), the baseline machine, and small
formatting helpers.  Each experiment returns a typed result object with
``rows()`` for tabular display and ``checks()`` returning the paper's
qualitative claims evaluated against the measured data.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.config import BASELINE, ProcessorConfig
from repro.runner.artifacts import trace_artifact
from repro.trace.profiles import BENCHMARK_ORDER
from repro.trace.trace import Trace

#: default dynamic trace length for experiments; long enough for stable
#: statistics, short enough that the full suite runs in minutes
DEFAULT_TRACE_LENGTH = 30_000


@functools.lru_cache(maxsize=64)
def cached_trace(
    benchmark: str, length: int = DEFAULT_TRACE_LENGTH,
    seed: int | None = None,
) -> Trace:
    """The trace for ``(benchmark, length, seed)``, cached twice over.

    The in-memory ``lru_cache`` serves repeats within a process; beneath
    it, :func:`repro.runner.artifacts.trace_artifact` persists the trace
    on disk so repeated experiment invocations (and parallel runner
    workers) skip generation entirely.  ``seed=None`` means the
    benchmark profile's deterministic default seed.
    """
    return trace_artifact(benchmark, length, seed)


@dataclass(frozen=True)
class Claim:
    """One of the paper's qualitative claims, evaluated on measured data."""

    description: str
    holds: bool
    detail: str

    def __str__(self) -> str:
        mark = "PASS" if self.holds else "FAIL"
        return f"[{mark}] {self.description} — {self.detail}"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Plain-text table with right-aligned numeric columns."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) if _numeric(cell) else cell.ljust(widths[i])
                      for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def _numeric(cell: str) -> bool:
    try:
        float(cell.rstrip("%x"))
        return True
    except ValueError:
        return False


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("empty sequence")
    return sum(values) / len(values)


__all__ = [
    "BASELINE",
    "BENCHMARK_ORDER",
    "DEFAULT_TRACE_LENGTH",
    "ProcessorConfig",
    "cached_trace",
    "Claim",
    "format_table",
    "mean",
]
