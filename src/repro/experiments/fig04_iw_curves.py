"""Figure 4 — the IW power-law curves for all twelve benchmarks.

Idealized trace-driven simulation (unit latency, unbounded issue width,
window-size limited) for W in {2..128}; the paper plots log2(I) against
log2(W) and observes near-straight lines whose slopes cluster around 0.5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    BENCHMARK_ORDER,
    DEFAULT_TRACE_LENGTH,
    Claim,
    cached_trace,
    format_table,
    WorkloadSpec,
    workload_for,
)
from repro.window.iw_simulator import DEFAULT_WINDOW_SIZES, IWCurve, measure_iw_curve
from repro.window.powerlaw import PowerLawFit, fit_curve


@dataclass(frozen=True)
class IWCurveRow:
    benchmark: str
    curve: IWCurve
    fit: PowerLawFit


@dataclass(frozen=True)
class IWCurvesResult:
    window_sizes: tuple[int, ...]
    rows: tuple[IWCurveRow, ...]

    def format(self) -> str:
        headers = ("bench",) + tuple(f"W={w}" for w in self.window_sizes) + (
            "alpha", "beta")
        table_rows = []
        for r in self.rows:
            table_rows.append(
                (r.benchmark,)
                + tuple(round(p.ipc, 2) for p in r.curve.points)
                + (round(r.fit.alpha, 2), round(r.fit.beta, 2))
            )
        return format_table(headers, table_rows)

    def checks(self) -> list[Claim]:
        betas = [r.fit.beta for r in self.rows]
        mean_beta = sum(betas) / len(betas)
        return [
            Claim(
                "every benchmark follows a power law (log-log lines, "
                "paper Figure 4)",
                all(r.fit.r_squared > 0.9 for r in self.rows),
                f"min R^2 {min(r.fit.r_squared for r in self.rows):.3f}",
            ),
            Claim(
                "slopes cluster near the square root (paper: ~0.5 on "
                "average, after Michaud et al.)",
                0.35 <= mean_beta <= 0.65,
                f"mean beta {mean_beta:.2f}",
            ),
            Claim(
                "issue rate grows monotonically with window size",
                all(
                    all(
                        a.ipc <= b.ipc + 1e-9
                        for a, b in zip(r.curve.points, r.curve.points[1:])
                    )
                    for r in self.rows
                ),
                "all curves monotone",
            ),
        ]


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_ORDER,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    window_sizes: tuple[int, ...] = DEFAULT_WINDOW_SIZES,
    workload: WorkloadSpec | None = None,
) -> IWCurvesResult:
    rows = []
    for name in benchmarks:
        trace = cached_trace(workload_for(workload, name, trace_length))
        curve = measure_iw_curve(trace, window_sizes)
        rows.append(
            IWCurveRow(benchmark=name, curve=curve, fit=fit_curve(curve))
        )
    return IWCurvesResult(window_sizes=window_sizes, rows=tuple(rows))


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
