"""Figure 6 — the IW characteristic once issue width is limited.

Per-cycle idealized simulation with maximum issue widths 2/4/8 and
unbounded: "The limited issue curves follow the ideal curves until the
window size equals the maximum issue width, and then they asymptotically
approach the issue width limit" — the Jouppi-style saturation the model
approximates with a hard clamp.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    Claim,
    WorkloadSpec,
    cached_trace,
    format_table,
    workload_for,
)
from repro.window.iw_simulator import LimitedWidthIWSimulator

#: paper Figure 6 sweeps (None = unbounded)
ISSUE_WIDTHS: tuple[int | None, ...] = (2, 4, 8, None)
WINDOW_SIZES = (2, 4, 8, 16, 32, 64, 128)

#: gcc is the benchmark Figure 6 is drawn for
DEFAULT_BENCHMARK = "gcc"


@dataclass(frozen=True)
class LimitedWidthResult:
    benchmark: str
    window_sizes: tuple[int, ...]
    #: ipcs[width][i] = IPC at window_sizes[i]; key None = unbounded
    ipcs: dict[int | None, tuple[float, ...]]

    def format(self) -> str:
        headers = ("width",) + tuple(f"W={w}" for w in self.window_sizes)
        rows = []
        for width in ISSUE_WIDTHS:
            label = "unbounded" if width is None else str(width)
            rows.append((label,) + tuple(
                round(v, 2) for v in self.ipcs[width]))
        return format_table(headers, rows)

    def checks(self) -> list[Claim]:
        unbounded = self.ipcs[None]
        claims = []
        for width in (2, 4, 8):
            series = self.ipcs[width]
            # saturation: the largest window's IPC approaches the limit
            claims.append(
                Claim(
                    f"width-{width} curve saturates at the issue width",
                    series[-1] <= width + 1e-9
                    and series[-1] > 0.85 * min(width, unbounded[-1]),
                    f"IPC at W={self.window_sizes[-1]} is {series[-1]:.2f}",
                )
            )
            # small windows: follows the unbounded curve
            small = [
                abs(series[i] - unbounded[i]) / unbounded[i]
                for i, w in enumerate(self.window_sizes)
                if w <= width
            ]
            if small:
                claims.append(
                    Claim(
                        f"width-{width} curve follows the ideal curve "
                        "below saturation",
                        max(small) < 0.1,
                        f"max deviation {max(small):.1%} for W <= {width}",
                    )
                )
        return claims


def run(
    benchmark: str = DEFAULT_BENCHMARK,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    window_sizes: tuple[int, ...] = WINDOW_SIZES,
    workload: WorkloadSpec | None = None,
) -> LimitedWidthResult:
    trace = cached_trace(workload_for(workload, benchmark, trace_length))
    ipcs: dict[int | None, tuple[float, ...]] = {}
    for width in ISSUE_WIDTHS:
        series = []
        for w in window_sizes:
            sim = LimitedWidthIWSimulator(
                w, issue_width=width if width is not None else len(trace)
            )
            series.append(sim.run(trace).ipc)
        ipcs[width] = tuple(series)
    return LimitedWidthResult(
        benchmark=benchmark, window_sizes=window_sizes, ipcs=ipcs
    )


if __name__ == "__main__":  # pragma: no cover
    result = run()
    print(result.format())
    for claim in result.checks():
        print(claim)
