"""The analytical model as a cheap surrogate for the detailed simulator.

The paper's central claim — first-order model CPI tracks detailed-sim
CPI within a few percent — is exactly what makes model-guided search
sound: rank candidates by model IPC, spend detailed simulations only on
the configs that might matter.  :class:`Surrogate` wraps
:class:`repro.core.model.FirstOrderModel` behind the shared trace cache,
counts every evaluation in the metrics registry
(``explore.surrogate_evals``), and supports reduced-fidelity scoring
(shorter traces) for the successive-halving strategy's early rungs.
"""

from __future__ import annotations

import dataclasses
import time

from repro.spec.specs import RunSpec
from repro.telemetry.metrics import metrics_registry


class Surrogate:
    """Stateless-per-spec, stateful-per-search model evaluator.

    One instance per search: it accumulates the evaluation count and
    wall-clock so the report (and ``repro bench``) can quote the
    surrogate-vs-detailed cost ratio.

    The expensive inputs of :meth:`FirstOrderModel.evaluate_trace` — the
    functional miss-event profile and the unit-latency IW power-law fit
    — do not depend on the window/width/depth axes a search typically
    sweeps, so they are memoized per workload (and, for the profile,
    per cache-hierarchy/predictor configuration).  Every candidate then
    pays only the closed-form Eq. 1 arithmetic, which is what makes the
    surrogate orders of magnitude cheaper than a detailed simulation.
    The memoized path calls the same functions with the same inputs as
    ``evaluate_trace``, so scores are bit-identical to the unmemoized
    model.
    """

    def __init__(self) -> None:
        self.evaluations = 0
        self.seconds = 0.0
        self._profiles: dict = {}
        self._fits: dict = {}

    def ipc(self, spec: RunSpec, length: int | None = None) -> float:
        """Model-predicted IPC for ``spec``'s machine on its workload.

        ``length`` overrides the trace length for reduced-fidelity
        rungs; the trace itself comes from the shared two-level cache
        (:func:`repro.experiments.common.cached_trace`), so repeated
        evaluations over one workload pay trace generation once.
        """
        from repro.core.model import FirstOrderModel
        from repro.experiments.common import cached_trace
        from repro.frontend.collector import (
            CollectorConfig,
            MissEventCollector,
        )
        from repro.window.characteristic import IWCharacteristic
        from repro.window.iw_simulator import measure_iw_curve
        from repro.window.powerlaw import fit_curve

        workload = spec.workload
        if length is not None:
            workload = dataclasses.replace(workload, length=length)
        start = time.perf_counter()
        trace = cached_trace(workload)
        config = spec.machine.to_config()
        wkey = (workload.benchmark, workload.length,
                workload.resolved_seed())

        pkey = wkey + (repr(config.hierarchy),
                       repr(config.predictor_factory),
                       config.ideal_predictor)
        profile = self._profiles.get(pkey)
        if profile is None:
            profile = MissEventCollector(CollectorConfig(
                hierarchy=config.hierarchy,
                predictor_factory=config.predictor_factory,
                ideal_predictor=config.ideal_predictor,
            )).collect(trace)
            self._profiles[pkey] = profile

        fit = self._fits.get(wkey)
        if fit is None:
            fit = fit_curve(measure_iw_curve(trace))
            self._fits[wkey] = fit

        # identical to FirstOrderModel.evaluate_trace, with the profile
        # and fit supplied from the memo instead of recomputed
        latency = profile.effective_mean_latency(
            config.latencies, config.hierarchy.l2_latency)
        characteristic = IWCharacteristic.from_fit(
            fit, latency=latency, issue_width=config.width)
        report = FirstOrderModel(config).evaluate(profile, characteristic)
        self.seconds += time.perf_counter() - start
        self.evaluations += 1
        metrics_registry().counter("explore.surrogate_evals").inc()
        return report.ipc

    @property
    def mean_seconds(self) -> float:
        """Mean wall-clock per evaluation (0.0 before the first one)."""
        if not self.evaluations:
            return 0.0
        return self.seconds / self.evaluations


__all__ = ["Surrogate"]
