"""Surrogate-guided design-space exploration.

The first-order model's reason to exist (the paper's §1 pitch) is that
it is accurate enough to *replace* detailed simulation for architecture
studies.  This package operationalizes that: a
:class:`~repro.explore.space.SearchSpec` names a design space over
:class:`~repro.spec.RunSpec` axes, a seeded deterministic strategy
(:mod:`~repro.explore.strategies`) ranks candidates with the analytical
surrogate (:mod:`~repro.explore.surrogate`), only the Pareto-candidate /
top-k configs are promoted to detailed simulation, and the result is a
detailed-sim-verified Pareto frontier (:mod:`~repro.explore.frontier`)
with surrogate-vs-detailed error tracked per promotion
(:mod:`~repro.explore.report`).  Budgets bound the spend, and a JSONL
journal (:mod:`~repro.explore.checkpoint`) makes any interrupted search
resume bit-identically.

Entry points: :func:`run_search` here, ``repro explore`` on the command
line, and the evaluation service's ``explore`` op.  See
docs/EXPLORATION.md.
"""

from repro.explore.checkpoint import Journal, JournalError
from repro.explore.engine import ExploreInterrupted, run_search
from repro.explore.frontier import (
    FrontierPoint,
    dominates,
    frontiers_equal,
    near_frontier,
    pareto_frontier,
)
from repro.explore.report import ExploreResult, Promotion
from repro.explore.space import (
    STRATEGIES,
    BudgetSpec,
    Candidate,
    SearchSpec,
    design_cost,
)
from repro.explore.strategies import score_candidates, select_promotions
from repro.explore.surrogate import Surrogate

__all__ = [
    "BudgetSpec",
    "Candidate",
    "ExploreInterrupted",
    "ExploreResult",
    "FrontierPoint",
    "Journal",
    "JournalError",
    "Promotion",
    "STRATEGIES",
    "SearchSpec",
    "Surrogate",
    "design_cost",
    "dominates",
    "frontiers_equal",
    "near_frontier",
    "pareto_frontier",
    "run_search",
    "score_candidates",
    "select_promotions",
]
