"""Deterministic seeded search strategies and promotion selection.

A strategy decides which candidates get a surrogate score (and at what
fidelity); promotion selection then decides which scored candidates earn
a detailed simulation.  Everything here is a pure function of the
:class:`~repro.explore.space.SearchSpec` — including its ``seed`` — plus
the surrogate's (deterministic) answers, which is what makes journal
replay reproduce the same decisions bit-identically.

Strategies
----------
``grid``
    score every candidate at full fidelity — exhaustive surrogate sweep.
``random``
    score a seeded sample of ``samples`` candidates (default: all, at
    which point it degenerates to ``grid`` with a shuffled visit order).
``halving``
    successive halving on surrogate score with trace length as the
    fidelity axis: every candidate is scored on a quarter-length trace,
    survivors (the margin band around the rung's Pareto frontier, plus
    the rung's ``top_k``) graduate to half length, then full length.

Promotion
---------
The surrogate's (cost, IPC) Pareto frontier, then its ``margin`` band,
then the ``top_k`` best-by-IPC remainder — in that deterministic
priority order, truncated to ``budget.max_detailed``.  Cost is exact,
so a true frontier point can only be lost if the surrogate over-ranks a
cheaper rival by more than ``margin`` relative IPC; the margin band is
sized to the model's config-to-config error spread, not its absolute
bias.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.explore.checkpoint import Journal
from repro.explore.frontier import (
    FrontierPoint,
    near_frontier,
    pareto_frontier,
)
from repro.explore.space import Candidate, SearchSpec
from repro.explore.surrogate import Surrogate


def _score_rung(
    rung: int,
    indices: Sequence[int],
    length: int | None,
    candidates: Sequence[Candidate],
    surrogate: Surrogate,
    journal: Journal,
) -> dict[int, float]:
    """Score ``indices`` at one fidelity, journal-first."""
    scores: dict[int, float] = {}
    for index in indices:
        cached = journal.surrogate.get((rung, index))
        if cached is not None:
            scores[index] = cached
            continue
        ipc = surrogate.ipc(candidates[index].spec, length=length)
        journal.record_surrogate(rung, index, ipc)
        scores[index] = ipc
    return scores


def _points(candidates: Sequence[Candidate],
            scores: dict[int, float]) -> list[FrontierPoint]:
    return [
        FrontierPoint(index=i, values=candidates[i].values,
                      cost=candidates[i].cost, ipc=ipc)
        for i, ipc in scores.items()
    ]


def _top_k(scores: dict[int, float], k: int,
           exclude: set[int] = frozenset()) -> list[int]:
    """The ``k`` best-scored indices (ties to the lower index)."""
    ranked = sorted(scores, key=lambda i: (-scores[i], i))
    return [i for i in ranked if i not in exclude][:k]


def _halving_lengths(full: int) -> list[int]:
    """Fidelity schedule: quarter, half, full trace length (deduped)."""
    lengths = []
    for frac in (4, 2, 1):
        length = max(1, full // frac)
        if length not in lengths:
            lengths.append(length)
    return lengths


def score_candidates(
    search: SearchSpec,
    candidates: Sequence[Candidate],
    surrogate: Surrogate,
    journal: Journal,
) -> dict[int, float]:
    """Run ``search.strategy``; return full-fidelity surrogate IPC by
    candidate index (only for the candidates the strategy considered)."""
    every = list(range(len(candidates)))
    if search.strategy == "grid":
        return _score_rung(0, every, None, candidates, surrogate, journal)

    if search.strategy == "random":
        count = len(every) if search.samples is None \
            else min(search.samples, len(every))
        rng = random.Random(search.seed)
        chosen = sorted(rng.sample(every, count))
        return _score_rung(0, chosen, None, candidates, surrogate, journal)

    # successive halving: trace length is the fidelity axis
    lengths = _halving_lengths(search.base.workload.length)
    survivors = every
    scores: dict[int, float] = {}
    for rung, length in enumerate(lengths):
        final = rung == len(lengths) - 1
        scores = _score_rung(rung, survivors, None if final else length,
                             candidates, surrogate, journal)
        if final:
            break
        points = _points(candidates, scores)
        keep = {p.index for p in near_frontier(points, search.margin)}
        keep.update(_top_k(scores, search.top_k))
        survivors = sorted(keep)
    return scores


def select_promotions(
    search: SearchSpec,
    candidates: Sequence[Candidate],
    scores: dict[int, float],
) -> list[int]:
    """The candidate indices worth a detailed simulation, in
    deterministic priority order (the engine applies the budget cap, so
    a truncation is visible as ``budget_exhausted`` in the result)."""
    points = _points(candidates, scores)
    exact = pareto_frontier(points)
    band = near_frontier(points, search.margin)
    promoted: list[int] = [p.index for p in exact]
    chosen = set(promoted)
    for p in sorted(band, key=lambda p: (-p.ipc, p.index)):
        if p.index not in chosen:
            promoted.append(p.index)
            chosen.add(p.index)
    for index in _top_k(scores, search.top_k, exclude=chosen):
        promoted.append(index)
        chosen.add(index)
    return promoted


__all__ = ["score_candidates", "select_promotions"]
