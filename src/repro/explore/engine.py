"""The search driver: surrogate sweep → promotion → verified frontier.

:func:`run_search` is the control loop the rest of the package feeds:
score candidates with the analytical surrogate (strategy-directed),
select the Pareto/top-k promotion set, execute promotions on the
detailed simulator through :func:`repro.runner.pool.run_units` (artifact
cache and all), and emit the detailed-sim-verified Pareto frontier with
per-promotion surrogate error.

Interruption is a first-class outcome, not a failure mode: every
completed evaluation is journaled immediately, a runner abort
(:class:`~repro.runner.pool.RunInterrupted`) is converted into
:class:`ExploreInterrupted` *after* banking the finished units, and a
``resume=True`` rerun replays the journal and finishes only the missing
work — bit-identically, because every decision is a deterministic
function of the :class:`~repro.explore.space.SearchSpec` and every
replayed number is exact.

``REPRO_EXPLORE_KILL_AFTER=<n>`` hard-exits the process after *n* newly
recorded detailed results — the deterministic mid-run crash the CI
smoke job and the checkpoint tests use to prove the resume guarantee.
"""

from __future__ import annotations

import os
import time

from repro.explore.checkpoint import Journal
from repro.explore.frontier import FrontierPoint, pareto_frontier
from repro.explore.report import ExploreResult, Promotion
from repro.explore.space import SearchSpec
from repro.explore.strategies import score_candidates, select_promotions
from repro.explore.surrogate import Surrogate
from repro.runner.pool import (
    RunInterrupted,
    WorkUnit,
    default_jobs,
    run_units,
)
from repro.spec import env as _specenv
from repro.telemetry.metrics import metrics_registry


class ExploreInterrupted(RuntimeError):
    """A search stopped before finishing its promotions.

    Everything completed is already in the journal (``journal_path``);
    rerunning the identical search with ``resume=True`` finishes it.
    """

    def __init__(self, message: str, journal_path: str | None,
                 completed: int, pending: int):
        hint = (f"; resume with the journal at {journal_path}"
                if journal_path else "")
        super().__init__(
            f"{message} ({completed} of {completed + pending} promotions "
            f"simulated{hint})")
        self.journal_path = journal_path
        self.completed = completed
        self.pending = pending


def _payload(result) -> dict:
    """The journaled (JSON-exact) detailed outcome of one promotion."""
    return {
        "instructions": int(result.instructions),
        "cycles": int(result.cycles),
        "cpi": float(result.cpi),
        "ipc": float(result.ipc),
    }


def run_search(
    search: SearchSpec,
    journal_path: str | None = None,
    resume: bool = False,
    jobs: int | None = None,
    progress=None,
) -> ExploreResult:
    """Run one design-space search to its verified Pareto frontier.

    ``journal_path=None`` disables persistence (the artifact cache still
    makes reruns cheap); ``resume=True`` replays an existing journal at
    that path.  ``jobs`` is forwarded to the parallel runner for the
    promotion batch.  Raises :class:`ExploreInterrupted` when the runner
    is interrupted mid-promotion, and
    :class:`~repro.explore.checkpoint.JournalError` when the journal
    belongs to a different search.
    """
    say = progress or (lambda message: None)
    start = time.perf_counter()
    reg = metrics_registry()
    candidates = search.candidates()
    deadline = (start + search.budget.max_seconds
                if search.budget.max_seconds is not None else None)

    journal = Journal(journal_path, search.content_key(), resume=resume)
    try:
        if journal.resumed:
            reg.counter("explore.resumed").inc()
            say(f"resuming: journal holds {len(journal.surrogate)} "
                f"surrogate scores, {len(journal.detailed)} detailed "
                f"results")

        surrogate = Surrogate()
        scores = score_candidates(search, candidates, surrogate, journal)
        say(f"surrogate scored {len(scores)}/{len(candidates)} candidates "
            f"({surrogate.evaluations} evaluations)")

        promoted = select_promotions(search, candidates, scores)
        budget_exhausted = False
        cap = search.budget.max_detailed
        if cap is not None and len(promoted) > cap:
            promoted = promoted[:cap]
            budget_exhausted = True
        reg.counter("explore.promotions").inc(len(promoted))
        pending = [i for i in promoted if i not in journal.detailed]
        say(f"promoting {len(promoted)} candidates "
            f"({len(promoted) - len(pending)} already journaled)")

        kill_after = _specenv.explore_kill_after()
        if kill_after is not None:
            chunk = 1  # one result per journal write: deterministic kill
        elif deadline is not None:
            chunk = max(1, jobs if jobs is not None else default_jobs())
        else:
            chunk = max(1, len(pending))

        executed = 0
        for offset in range(0, len(pending), chunk):
            if deadline is not None and time.perf_counter() > deadline:
                budget_exhausted = True
                break
            batch = pending[offset:offset + chunk]
            units = [WorkUnit.from_spec(candidates[i].spec, tag=str(i))
                     for i in batch]
            try:
                results, stats = run_units(units, jobs=jobs,
                                           reuse_results=True)
            except RunInterrupted as exc:
                for unit_result in exc.completed:
                    journal.record_detailed(int(unit_result.unit.tag),
                                            _payload(unit_result.result))
                done = len(journal.detailed)
                raise ExploreInterrupted(
                    str(exc), journal_path=str(journal.path)
                    if journal.path else None,
                    completed=done, pending=len(promoted) - done,
                ) from exc
            reg.counter("explore.cache_hits").inc(
                stats.cache.hits.get("result", 0))
            for unit_result in results:
                journal.record_detailed(int(unit_result.unit.tag),
                                        _payload(unit_result.result))
                executed += 1
                reg.counter("explore.detailed_runs").inc()
                if kill_after is not None and executed >= kill_after:
                    journal.close()
                    os._exit(1)
        if len(journal.detailed) < len(promoted):
            budget_exhausted = True

        promotions = []
        verified = []
        for index in promoted:
            cand = candidates[index]
            detailed = journal.detailed.get(index)
            if detailed is None:
                promotions.append(Promotion(
                    index=index, values=cand.values, cost=cand.cost,
                    surrogate_ipc=scores[index]))
                continue
            ipc = detailed["ipc"]
            promotions.append(Promotion(
                index=index, values=cand.values, cost=cand.cost,
                surrogate_ipc=scores[index], ipc=ipc,
                error=(scores[index] - ipc) / ipc))
            verified.append(FrontierPoint(
                index=index, values=cand.values, cost=cand.cost, ipc=ipc))

        result = ExploreResult(
            search=search,
            candidates=len(candidates),
            scored=len(scores),
            promotions=promotions,
            frontier=pareto_frontier(verified),
            detailed_used=len(verified),
            executed=executed,
            surrogate_evals=surrogate.evaluations,
            surrogate_seconds=surrogate.seconds,
            wall_seconds=time.perf_counter() - start,
            budget_exhausted=budget_exhausted,
            resumed=journal.resumed,
            journal_path=str(journal.path) if journal.path else None,
        )
        reg.counter("explore.searches").inc()
        journal.record_finished({
            "search_key": search.content_key(),
            "frontier": [p.to_dict() for p in result.frontier],
            "budget_exhausted": budget_exhausted,
        })
        say(f"frontier: {len(result.frontier)} points from "
            f"{len(promoted)} promotions "
            f"({result.promoted_fraction:.0%} of the grid)")
        return result
    finally:
        journal.close()


__all__ = ["ExploreInterrupted", "run_search"]
