"""Search results: the verified frontier, promotions, and error tracking.

:class:`ExploreResult` is the one object a search returns — JSON-clean
via :meth:`~ExploreResult.to_dict` (the CLI's ``-o`` payload and the
service's response body) and human-readable via
:meth:`~ExploreResult.format`.  Per-promotion surrogate-vs-detailed
relative error is first-class: it is the observable that justifies (or
indicts) the surrogate, exactly the paper's Figure-15 comparison turned
into a running health check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.explore.frontier import FrontierPoint
from repro.explore.space import SearchSpec


@dataclass(frozen=True)
class Promotion:
    """One candidate promoted to detailed simulation.

    ``ipc``/``error`` are ``None`` when the budget ran out before this
    promotion's simulation happened; the error is relative,
    ``(surrogate - detailed) / detailed``.
    """

    index: int
    values: tuple  # ((axis-path, value), ...) in axis order
    cost: float
    surrogate_ipc: float
    ipc: float | None = None
    error: float | None = None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "values": dict(self.values),
            "cost": self.cost,
            "surrogate_ipc": self.surrogate_ipc,
            "ipc": self.ipc,
            "error": self.error,
        }


@dataclass
class ExploreResult:
    """Everything one search produced."""

    search: SearchSpec
    candidates: int                 #: size of the full design grid
    scored: int                     #: candidates the strategy scored
    promotions: list[Promotion] = field(default_factory=list)
    frontier: list[FrontierPoint] = field(default_factory=list)
    detailed_used: int = 0          #: detailed results consumed (incl. replayed)
    executed: int = 0               #: detailed simulations run this invocation
    surrogate_evals: int = 0        #: surrogate calls this invocation
    surrogate_seconds: float = 0.0  #: wall-clock spent in the surrogate
    wall_seconds: float = 0.0
    budget_exhausted: bool = False
    resumed: bool = False
    journal_path: str | None = None

    @property
    def promoted_fraction(self) -> float:
        """Detailed-simulator invocations over grid size — the headline
        saving (acceptance bar: ≤ 0.40 while matching the exhaustive
        frontier)."""
        if not self.candidates:
            return 0.0
        return len(self.promotions) / self.candidates

    def errors(self) -> list[float]:
        return [abs(p.error) for p in self.promotions
                if p.error is not None]

    @property
    def mean_abs_error(self) -> float:
        errors = self.errors()
        return sum(errors) / len(errors) if errors else 0.0

    @property
    def worst_abs_error(self) -> float:
        errors = self.errors()
        return max(errors) if errors else 0.0

    def to_dict(self) -> dict:
        return {
            "search": self.search.to_dict(),
            "search_key": self.search.content_key(),
            "candidates": self.candidates,
            "scored": self.scored,
            "promotions": [p.to_dict() for p in self.promotions],
            "promoted_fraction": self.promoted_fraction,
            "frontier": [p.to_dict() for p in self.frontier],
            "detailed_used": self.detailed_used,
            "executed": self.executed,
            "surrogate_evals": self.surrogate_evals,
            "surrogate_seconds": self.surrogate_seconds,
            "mean_abs_error": self.mean_abs_error,
            "worst_abs_error": self.worst_abs_error,
            "wall_seconds": self.wall_seconds,
            "budget_exhausted": self.budget_exhausted,
            "resumed": self.resumed,
        }

    def format(self) -> str:
        """Render the search outcome as text (tables + ASCII frontier)."""
        from repro.experiments.common import format_table
        from repro.util.ascii_plot import line_plot

        search = self.search
        lines = [
            f"search over {self.candidates} candidates "
            f"({', '.join(search.axes)}) — strategy {search.strategy}, "
            f"workload {search.base.workload.benchmark}"
            f"/{search.base.workload.length}",
            f"surrogate scored {self.scored}, promoted "
            f"{len(self.promotions)} ({self.promoted_fraction:.0%}) to "
            f"detailed simulation in {self.wall_seconds:.2f}s"
            + (" [resumed]" if self.resumed else "")
            + (" [budget exhausted]" if self.budget_exhausted else ""),
        ]
        on_frontier = {p.index for p in self.frontier}
        rows = []
        for p in self.promotions:
            rows.append((
                " ".join(f"{path.split('.')[-1]}={value}"
                         for path, value in p.values),
                p.cost,
                p.surrogate_ipc,
                p.ipc if p.ipc is not None else "-",
                f"{p.error:+.1%}" if p.error is not None else "-",
                "*" if p.index in on_frontier else "",
            ))
        lines.append("")
        lines.append(format_table(
            ("config", "cost", "model IPC", "sim IPC", "error", "front"),
            rows))
        if self.promotions and self.errors():
            lines.append(
                f"surrogate |error|: mean {self.mean_abs_error:.1%}, "
                f"worst {self.worst_abs_error:.1%}")
        if len(self.frontier) >= 2:
            lines.append("")
            lines.append(line_plot(
                {"frontier": ([p.cost for p in self.frontier],
                              [p.ipc for p in self.frontier])},
                title="Pareto frontier (detailed-sim verified)",
                x_label="design cost", y_label="IPC",
            ))
        return "\n".join(lines)


__all__ = ["ExploreResult", "Promotion"]
