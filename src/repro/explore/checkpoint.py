"""Journal-based checkpoint/resume for interrupted searches.

Every completed evaluation — surrogate scores per rung, detailed
simulation results — is appended to a JSONL journal as soon as it
exists, each line flushed, so a search killed at any instant loses at
most the evaluation in flight.  Resuming replays the journal: already-
recorded evaluations are served from it verbatim (exact floats — JSON
round-trips IEEE doubles losslessly), the strategy re-derives every
*decision* deterministically from the :class:`~repro.explore.space.
SearchSpec`, and only the missing work runs, against the same artifact
cache.  The net effect is the bit-identical frontier an uninterrupted
run would have produced.

The journal header pins the search's content key; resuming against a
journal written by a *different* search is refused rather than silently
blended.  A torn final line (the crash happened mid-write) is ignored.
"""

from __future__ import annotations

import json
from pathlib import Path

#: journal line format version (the "v" of the header line)
JOURNAL_SCHEMA = 1


class JournalError(RuntimeError):
    """The journal cannot serve this search (mismatched key, bad
    header, or an unwritable path)."""


class Journal:
    """Append-only evaluation log for one search.

    ``path=None`` keeps the journal in memory only — same bookkeeping,
    no persistence (the evaluation service uses this: its durability is
    the artifact cache).  With ``resume=False`` an existing file is
    overwritten; with ``resume=True`` it is replayed, provided its
    header matches ``search_key``.
    """

    def __init__(self, path: str | Path | None, search_key: str,
                 resume: bool = False):
        self.path = Path(path) if path is not None else None
        self.search_key = search_key
        self.surrogate: dict[tuple[int, int], float] = {}
        self.detailed: dict[int, dict] = {}
        self.resumed = False
        self._fh = None
        if self.path is not None and resume and self.path.exists():
            self._replay()
            self.resumed = bool(self.surrogate or self.detailed)
            self._fh = open(self.path, "a", encoding="utf-8")
        elif self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "w", encoding="utf-8")
            self._append({"event": "search", "v": JOURNAL_SCHEMA,
                          "search_key": self.search_key})

    # -- replay ----------------------------------------------------------

    def _replay(self) -> None:
        lines = self.path.read_text(encoding="utf-8").splitlines()
        if not lines:
            raise JournalError(f"journal {self.path} is empty")
        for lineno, line in enumerate(lines):
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines) - 1:
                    break  # torn tail: the interrupted write
                raise JournalError(
                    f"journal {self.path} is corrupt at line {lineno + 1}")
            self._absorb(lineno, event)

    def _absorb(self, lineno: int, event: dict) -> None:
        kind = event.get("event")
        if lineno == 0:
            if kind != "search" or event.get("v") != JOURNAL_SCHEMA:
                raise JournalError(
                    f"journal {self.path} has no valid header line")
            if event.get("search_key") != self.search_key:
                raise JournalError(
                    f"journal {self.path} belongs to a different search "
                    f"({event.get('search_key', '?')[:12]}… vs "
                    f"{self.search_key[:12]}…)")
            return
        if kind == "surrogate":
            self.surrogate[(event["rung"], event["index"])] = event["ipc"]
        elif kind == "detailed":
            self.detailed[event["index"]] = event["result"]
        # "finished" and unknown events carry no replay state: the
        # result is recomputed from the evaluations, deterministically

    # -- recording -------------------------------------------------------

    def _append(self, event: dict) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(event, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()

    def record_surrogate(self, rung: int, index: int, ipc: float) -> None:
        self.surrogate[(rung, index)] = ipc
        self._append({"event": "surrogate", "rung": rung, "index": index,
                      "ipc": ipc})

    def record_detailed(self, index: int, result: dict) -> None:
        self.detailed[index] = result
        self._append({"event": "detailed", "index": index,
                      "result": result})

    def record_finished(self, summary: dict) -> None:
        self._append({"event": "finished", "summary": summary})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["JOURNAL_SCHEMA", "Journal", "JournalError"]
