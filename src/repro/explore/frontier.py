"""Pareto machinery: dominance, frontiers, and the surrogate slack band.

A design point is plotted as (cost, IPC) — cost exact (a pure function
of the machine spec, :func:`repro.explore.space.design_cost`), IPC either
surrogate-predicted or detailed-measured.  Because cost is *exact*, the
only way the surrogate can evict a true frontier point is by over-ranking
a same-or-cheaper rival's IPC; :func:`near_frontier` therefore keeps
every point within a relative IPC ``margin`` of slack-dominance alive,
so a surrogate whose config-to-config error spread stays under the
margin provably preserves the detailed frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class FrontierPoint:
    """One evaluated design point: grid index, axis values, cost, IPC."""

    index: int
    values: tuple  # ((axis-path, value), ...) in axis order
    cost: float
    ipc: float

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "values": dict(self.values),
            "cost": self.cost,
            "ipc": self.ipc,
        }


def dominates(a: FrontierPoint, b: FrontierPoint) -> bool:
    """Pareto dominance: ``a`` is no worse on both axes, better on one."""
    return (a.cost <= b.cost and a.ipc >= b.ipc
            and (a.cost < b.cost or a.ipc > b.ipc))


def pareto_frontier(
    points: Iterable[FrontierPoint],
) -> list[FrontierPoint]:
    """The non-dominated subset, sorted by (cost, -ipc, index).

    Exact (cost, ipc) ties are all kept — neither dominates the other —
    and the sort keeps the output deterministic regardless of input
    order.
    """
    pts = list(points)
    front = [p for p in pts if not any(dominates(q, p) for q in pts)]
    return sorted(front, key=lambda p: (p.cost, -p.ipc, p.index))


def _slack_dominates(q: FrontierPoint, p: FrontierPoint,
                     margin: float) -> bool:
    """Whether ``q`` beats ``p`` by more than the trust ``margin``.

    ``q`` must be no more expensive and ahead on IPC by the full
    relative margin; exact (cost, ipc) ties fall to the lower index so
    duplicates cannot eliminate each other symmetrically.
    """
    if q.index == p.index or q.cost > p.cost:
        return False
    if q.ipc < p.ipc * (1.0 + margin):
        return False
    if q.cost < p.cost or q.ipc > p.ipc:
        return True
    return q.index < p.index


def near_frontier(
    points: Sequence[FrontierPoint], margin: float,
) -> list[FrontierPoint]:
    """Points surviving slack-dominance — the frontier plus its margin
    band, sorted like :func:`pareto_frontier`.

    With ``margin=0`` this is exactly the Pareto frontier (ties kept,
    lowest index on exact duplicates).  A positive margin widens the
    band: a point is only discarded when some no-more-expensive rival
    out-predicts it by more than ``margin`` *relative* IPC, which is the
    eviction the surrogate must never get wrong.
    """
    kept = [
        p for p in points
        if not any(_slack_dominates(q, p, margin) for q in points)
    ]
    return sorted(kept, key=lambda p: (p.cost, -p.ipc, p.index))


def frontiers_equal(a: Sequence[FrontierPoint],
                    b: Sequence[FrontierPoint]) -> bool:
    """Bit-identical frontier comparison (exact floats, same order)."""
    return [p.to_dict() for p in a] == [p.to_dict() for p in b]


__all__ = [
    "FrontierPoint",
    "dominates",
    "frontiers_equal",
    "near_frontier",
    "pareto_frontier",
]
