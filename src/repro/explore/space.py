"""Search-space definition: what design points an exploration covers.

A :class:`SearchSpec` is to exploration what :class:`repro.spec.RunSpec`
is to a single run — one typed, serializable object naming the *question*
a search answers: a base spec, the dotted-path axes that span the design
space (reusing :class:`repro.spec.SweepSpec`'s axis vocabulary), the
strategy and its seed, the promotion knobs (``top_k``, ``margin``) and
the evaluation :class:`BudgetSpec`.  :meth:`SearchSpec.content_key`
content-addresses the whole question, which is what lets the evaluation
service coalesce identical searches in flight and the journal refuse to
resume a *different* search.

The frontier trades predicted performance (IPC, maximized) against
:func:`design_cost` (minimized) — a deliberately transparent first-order
area proxy over the axes the paper sweeps: the issue window's CAM
dominates, the ROB is cheap SRAM, issue width multiplies ports, and
pipeline depth adds latches.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.spec.specs import (
    RunSpec,
    SpecError,
    SweepSpec,
    _set_dotted,
)

#: bump when the canonical search layout changes; part of every search key
SEARCH_SCHEMA = 1

#: deterministic seeded strategies (implemented in
#: :mod:`repro.explore.strategies`)
STRATEGIES = ("grid", "random", "halving")


def design_cost(machine) -> float:
    """First-order hardware cost of a :class:`~repro.spec.MachineSpec`.

    ``window + rob/4 + 8*width + 2*depth``: the out-of-order window's
    full-CAM entries cost 1 each, ROB entries are plain SRAM (¼), each
    issue port multiplies wakeup/select and register-file porting (8),
    and every pipeline stage adds a rank of latches (2).  The absolute
    scale is arbitrary; only the *ordering* matters to a Pareto
    frontier, and the ordering is the textbook one — bigger windows,
    wider issue and deeper pipes all cost more.
    """
    return float(
        machine.window_size
        + machine.rob_size / 4.0
        + 8.0 * machine.width
        + 2.0 * machine.pipeline_depth
    )


@dataclass(frozen=True)
class BudgetSpec:
    """Explicit evaluation budget for one search.

    ``max_detailed`` caps how many candidate configs may be promoted to
    detailed simulation; ``max_seconds`` bounds the search wall-clock
    (checked between evaluation batches — a best-effort bound, and one
    that makes the outcome machine-dependent, so budget-exhausted runs
    are flagged in the result).  ``None`` means unlimited.
    """

    max_detailed: int | None = None
    max_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_detailed is not None and (
                not isinstance(self.max_detailed, int)
                or isinstance(self.max_detailed, bool)
                or self.max_detailed < 1):
            raise SpecError("budget max_detailed must be a positive "
                            "integer or null")
        if self.max_seconds is not None and (
                not isinstance(self.max_seconds, (int, float))
                or isinstance(self.max_seconds, bool)
                or self.max_seconds <= 0):
            raise SpecError("budget max_seconds must be a positive "
                            "number or null")

    @classmethod
    def from_dict(cls, data: Any) -> "BudgetSpec":
        if not isinstance(data, Mapping):
            raise SpecError("budget must be a JSON object")
        unknown = set(data) - {"max_detailed", "max_seconds"}
        if unknown:
            raise SpecError(f"unknown budget field(s): {sorted(unknown)}")
        return cls(**dict(data))

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class Candidate:
    """One design point of the space: its grid index, the axis values
    that define it, the fully-built :class:`RunSpec`, and its cost."""

    index: int
    values: tuple  # ((axis-path, value), ...) in axis order
    spec: RunSpec
    cost: float

    def values_dict(self) -> dict:
        return dict(self.values)


@dataclass(frozen=True)
class SearchSpec:
    """One fully-described design-space search.

    ``axes`` maps dotted spec paths (``"machine.window_size"``) to the
    values to explore — the same vocabulary as
    :class:`~repro.spec.SweepSpec`, which is what :meth:`sweep` returns.
    The workload is fixed (the base spec's); the search varies the
    machine and ranks candidates by surrogate IPC against
    :func:`design_cost`.
    """

    base: RunSpec
    axes: Mapping[str, tuple] = field(default_factory=dict)
    strategy: str = "grid"
    seed: int = 0
    samples: int | None = None   #: candidates scored by ``random``
    top_k: int = 1               #: extra best-by-surrogate promotions
    margin: float = 0.05         #: surrogate slack band kept Pareto-alive
    budget: BudgetSpec = field(default_factory=BudgetSpec)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "axes", {k: tuple(v) for k, v in dict(self.axes).items()})
        if not self.axes:
            raise SpecError("a search requires at least one axis")
        for path, values in self.axes.items():
            if not values:
                raise SpecError(f"search axis {path!r} has no values")
            if len(set(values)) != len(values):
                raise SpecError(f"search axis {path!r} has duplicate values")
            for value in values:  # validate every grid coordinate early
                _set_dotted(self.base, path, value)
        if self.strategy not in STRATEGIES:
            raise SpecError(f"unknown strategy {self.strategy!r}; one of "
                            + ", ".join(STRATEGIES))
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise SpecError("search seed must be an integer")
        if self.samples is not None and (
                not isinstance(self.samples, int)
                or isinstance(self.samples, bool) or self.samples < 1):
            raise SpecError("samples must be a positive integer or null")
        if not isinstance(self.top_k, int) or isinstance(self.top_k, bool) \
                or self.top_k < 0:
            raise SpecError("top_k must be a non-negative integer")
        if not isinstance(self.margin, (int, float)) \
                or isinstance(self.margin, bool) or self.margin < 0:
            raise SpecError("margin must be a non-negative number")

    # -- the grid --------------------------------------------------------

    def sweep(self) -> SweepSpec:
        """The space as a plain :class:`~repro.spec.SweepSpec`."""
        return SweepSpec(base=self.base, axes=self.axes)

    def candidates(self) -> list[Candidate]:
        """Every design point, in :meth:`SweepSpec.expand` order.

        The order is deterministic — axes in insertion order, each
        axis's values in the given order, the last axis varying fastest
        — and the candidate ``index`` is its position in that order,
        which is the identity the journal records.
        """
        specs = self.sweep().expand()
        combos = itertools.product(*(
            [(path, v) for v in values]
            for path, values in self.axes.items()
        ))
        return [
            Candidate(index=i, values=tuple(combo), spec=spec,
                      cost=design_cost(spec.machine))
            for i, (combo, spec) in enumerate(zip(combos, specs))
        ]

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "search_schema": SEARCH_SCHEMA,
            "base": self.base.to_dict(),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "strategy": self.strategy,
            "seed": self.seed,
            "samples": self.samples,
            "top_k": self.top_k,
            "margin": self.margin,
            "budget": self.budget.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Any) -> "SearchSpec":
        if not isinstance(data, Mapping):
            raise SpecError("search must be a JSON object")
        out = dict(data)
        schema = out.pop("search_schema", SEARCH_SCHEMA)
        if schema != SEARCH_SCHEMA:
            raise SpecError(
                f"unsupported search_schema {schema!r} (this release "
                f"reads {SEARCH_SCHEMA})")
        allowed = {f.name for f in dataclasses.fields(cls)}
        unknown = set(out) - allowed
        if unknown:
            raise SpecError(f"unknown search field(s): {sorted(unknown)}")
        if "base" not in out:
            raise SpecError("a search requires a 'base' spec")
        out["base"] = RunSpec.from_dict(out["base"])
        if "budget" in out:
            out["budget"] = BudgetSpec.from_dict(out["budget"])
        try:
            return cls(**out)
        except TypeError as exc:
            raise SpecError(f"invalid search: {exc}") from exc

    # -- keying ----------------------------------------------------------

    def canonical(self) -> dict:
        """The keying form: the base reduced to its result recipe (the
        engine cannot change any answer), workload seed resolved, plus
        every knob that can change what the search reports."""
        return {
            "search_schema": SEARCH_SCHEMA,
            "base": self.base.result_recipe(),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "strategy": self.strategy,
            "seed": self.seed,
            "samples": self.samples,
            "top_k": self.top_k,
            "margin": self.margin,
            "budget": self.budget.to_dict(),
        }

    def content_key(self) -> str:
        """Content-address of the search question — the service's
        coalescing key and the journal's identity check."""
        from repro.runner.artifacts import artifact_key

        return artifact_key("search", self.canonical())


__all__ = [
    "SEARCH_SCHEMA",
    "STRATEGIES",
    "BudgetSpec",
    "Candidate",
    "SearchSpec",
    "design_cost",
]
