#!/usr/bin/env python
"""CI guard: streaming pipeline peak memory is O(chunk), not O(trace).

Runs the functional frontend and the detailed engine over a long trace
through the chunked streaming substrate (``docs/TRACE.md``) and asserts,
via :mod:`tracemalloc`, that peak Python allocation stays a small
multiple of one chunk's payload footprint — orders of magnitude below
what materializing the whole trace would cost.  This is the property
that makes 10^7-instruction workloads routine; the guard fails loudly
if anyone reintroduces a whole-trace materialization on the streaming
path.

Usage::

    PYTHONPATH=src python scripts/memory_guard.py [--length N]
"""

from __future__ import annotations

import argparse
import resource
import sys
import tracemalloc

from repro.config import BASELINE
from repro.simulator.streaming import simulate_stream
from repro.trace.chunks import TraceChunkStream, chunk_layout
from repro.trace.profiles import get_profile
from repro.trace.vectorgen import (
    DEFAULT_CHUNK_SIZE,
    ChunkedTraceGenerator,
    stream_chunks,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--length", type=int, default=1_000_000)
    parser.add_argument("--benchmark", default="gzip")
    parser.add_argument("--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE)
    parser.add_argument(
        "--budget-chunks", type=float, default=40.0,
        help="allowed peak allocation, in chunk-payload multiples "
             "(the engine stages each chunk as Python lists, so the "
             "constant is well above the compact payload bytes)",
    )
    parser.add_argument(
        "--growth-limit", type=float, default=1.25,
        help="allowed peak growth between the short and the full run; "
             "an O(trace) allocation would grow ~4x",
    )
    args = parser.parse_args(argv)

    # one chunk's payload footprint, measured rather than assumed
    probe = next(iter(
        ChunkedTraceGenerator(get_profile(args.benchmark))
        .chunks(args.chunk_size, chunk_size=args.chunk_size)
    ))
    chunk_bytes = chunk_layout(probe)["payload_bytes"]

    def run(length):
        # a cache-independent stream: every pass regenerates, so the
        # guard exercises generation + functional pass + detailed
        # engine — the full streaming pipeline, nothing served from mmap
        stream = TraceChunkStream(
            lambda: stream_chunks(args.benchmark, length,
                                  chunk_size=args.chunk_size),
            name=args.benchmark, length=length, chunk_size=args.chunk_size,
        )
        tracemalloc.start()
        result = simulate_stream(stream, BASELINE, instrument=False)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return result, peak

    # O(chunk) means peak is flat in trace length: measure at a quarter
    # of the target length and at the full length, and require both an
    # absolute ceiling and (the sharper check) near-zero growth
    short_length = max(args.length // 4, 2 * args.chunk_size)
    _, short_peak = run(short_length)
    result, peak = run(args.length)
    rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    budget = args.budget_chunks * chunk_bytes
    growth = peak / short_peak
    print(f"instructions     {args.length:,} "
          f"(short run: {short_length:,})")
    print(f"chunk payload    {chunk_bytes / 2**20:.2f} MiB "
          f"({args.chunk_size:,} instructions)")
    print(f"peak allocation  {peak / 2**20:.2f} MiB "
          f"({peak / chunk_bytes:.1f} chunk footprints); "
          f"short run {short_peak / 2**20:.2f} MiB")
    print(f"peak growth      {growth:.2f}x over a "
          f"{args.length / short_length:.1f}x longer trace "
          f"(limit {args.growth_limit:g}x)")
    print(f"budget           {budget / 2**20:.2f} MiB "
          f"({args.budget_chunks:g} chunks)")
    print(f"process max RSS  {rss_kib / 2**10:.1f} MiB")
    print(f"cycles           {result.cycles:,}  "
          f"CPI {result.cycles / args.length:.3f}")

    if peak > budget:
        print("FAIL: streaming peak exceeds the O(chunk) budget",
              file=sys.stderr)
        return 1
    if growth > args.growth_limit:
        print("FAIL: peak grows with trace length — an O(trace) "
              "allocation is back on the streaming path",
              file=sys.stderr)
        return 1
    print("OK: peak memory is O(chunk)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
